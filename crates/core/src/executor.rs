//! The deterministic parallel Monte-Carlo executor.
//!
//! Every estimate in this repository — each cell of an experiment
//! grid, each differential fuzz budget — is a loop of independent
//! boolean trials. This module runs those loops in parallel while
//! keeping the result **bit-identical at any thread count**:
//!
//! * **Stateless per-trial seeding.** Trial `i`'s RNG seed is
//!   [`derive_trial_seed`]`(base_seed, i)` — a splitmix64 finalizer
//!   over the trial *index*, the same counter-stream trick the fault
//!   substrate uses — so a trial's randomness depends only on
//!   `(base_seed, i)`, never on which worker ran it or what ran
//!   before it.
//! * **Fixed chunk geometry.** Trials are partitioned into contiguous
//!   chunks whose size is a pure function of the trial count (or an
//!   explicit [`MonteCarloConfig::chunk_size`]) — never of the thread
//!   count. Workers claim whole chunks from an atomic counter
//!   (work-stealing: a fast worker simply claims more chunks).
//! * **Order-independent reduction.** Each chunk produces a failure
//!   count and (for observed runs) a private [`MemorySink`]. Failure
//!   counts add and sinks merge element-wise — both commutative and
//!   associative over integers — and the final reduction walks chunks
//!   in index order, so the totals are identical whether the run used
//!   1 thread or 64, chunk size 16 or 1024.
//! * **Per-worker state.** `init()` runs once per worker; trials reuse
//!   that worker's scratch buffers (`TesterScratch` and friends), so
//!   the per-trial hot path allocates nothing.
//!
//! Chunks are also the unit of checkpointing: with a
//! [`crate::checkpoint::Checkpoint`] attached, each completed chunk is
//! appended (and flushed) to a JSONL file, and a rerun skips every
//! recorded chunk — the final estimate is bit-identical to an
//! uninterrupted run because chunk geometry and seeds don't depend on
//! who computed a chunk.
//!
//! The ergonomic entry points live in [`crate::montecarlo`]
//! ([`crate::montecarlo::MonteCarlo`] and the free `estimate_*`
//! functions); this module holds the engine and its configuration.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use dut_obs::{MemorySink, NoopSink, Sink};

use crate::checkpoint::{Checkpoint, CheckpointError, ChunkRecord, Plan};

/// Largest chunk the automatic policy picks. 1024 trials per chunk
/// keeps checkpoint files small (≤ ~400 lines for a 400k-trial cell)
/// while leaving chunk-claim contention negligible.
pub const MAX_AUTO_CHUNK: usize = 1024;

/// Process-wide default worker count; 0 means "ask the OS".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by configs with `threads == 0`
/// (the `--threads` flag of the experiments binary lands here).
/// Passing 0 restores the OS-reported parallelism. Thread count never
/// affects results — only wall-clock time.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count an auto-threaded config resolves to: the
/// [`set_default_threads`] override if set, else the OS-reported
/// available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// The chunk size the automatic policy picks for `trials`: about 64
/// chunks per run, clamped to `[16, `[`MAX_AUTO_CHUNK`]`]` and never
/// larger than the run. A pure function of `trials` — deliberately
/// independent of thread count — so chunk geometry (and therefore
/// checkpoint layout) is reproducible.
pub fn auto_chunk_size(trials: usize) -> usize {
    (trials / 64).clamp(16, MAX_AUTO_CHUNK).min(trials.max(1))
}

/// How a Monte-Carlo run executes. **Never** what it computes: every
/// config produces bit-identical estimates for the same
/// `(trials, base_seed, trial)`; this only tunes threads and
/// checkpoint granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Worker threads; 0 = [`default_threads`].
    pub threads: usize,
    /// Trials per chunk; 0 = [`auto_chunk_size`].
    pub chunk_size: usize,
}

impl MonteCarloConfig {
    /// Auto threads, auto chunk size — what the free
    /// `estimate_failure_rate*` functions use.
    pub fn auto() -> Self {
        MonteCarloConfig::default()
    }

    /// Single-threaded execution (the serial side of the
    /// serial-vs-parallel differential tests).
    pub fn serial() -> Self {
        MonteCarloConfig {
            threads: 1,
            chunk_size: 0,
        }
    }

    /// Exactly `threads` workers (0 = auto).
    pub fn with_threads(threads: usize) -> Self {
        MonteCarloConfig {
            threads,
            chunk_size: 0,
        }
    }

    /// Sets the chunk size (0 = auto). Affects checkpoint granularity
    /// and scheduling only, never results — but a checkpoint records
    /// its chunk size, so resuming must use the same value.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// The worker count this config resolves to right now.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
        .max(1)
    }

    /// The chunk size this config resolves to for a `trials`-sized run.
    pub fn resolved_chunk_size(&self, trials: usize) -> usize {
        if self.chunk_size == 0 {
            auto_chunk_size(trials)
        } else {
            self.chunk_size.min(trials.max(1))
        }
    }
}

/// What one chunk produced (or was restored with).
#[derive(Debug)]
struct ChunkOut {
    failures: usize,
    sink: Option<MemorySink>,
}

/// The chunk-ordered reduction of a whole run.
#[derive(Debug)]
pub(crate) struct Reduction {
    /// Total failed trials.
    pub failures: usize,
    /// Merge of every chunk's sink, in chunk-index order (empty for
    /// unobserved runs).
    pub sink: MemorySink,
}

/// Runs `trials` boolean trials chunk-parallel and reduces them
/// deterministically. `trial(seed, state, sink)` returns `true` iff
/// the trial **failed**; `init()` runs once per worker. With
/// `observe`, each chunk records into a private [`MemorySink`];
/// without, trials see a [`NoopSink`] (`enabled() == false`) and the
/// reduction's sink stays empty.
///
/// Panics in `init`/`trial` re-raise their original payload on the
/// caller. Checkpoint failures surface as `Err` and stop the run early.
pub(crate) fn run_chunked<S, I, F>(
    cfg: MonteCarloConfig,
    trials: usize,
    base_seed: u64,
    observe: bool,
    checkpoint: Option<(&mut Checkpoint, &str)>,
    init: I,
    trial: F,
) -> Result<Reduction, CheckpointError>
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
{
    assert!(trials > 0, "callers guard trials == 0");
    let chunk_size = cfg.resolved_chunk_size(trials);
    let chunk_count = trials.div_ceil(chunk_size);
    let results: Vec<OnceLock<ChunkOut>> = (0..chunk_count).map(|_| OnceLock::new()).collect();

    let ck = match checkpoint {
        Some((ck, label)) => {
            let plan = Plan {
                trials,
                chunk_size,
                base_seed,
                observed: observe,
            };
            for (chunk, ChunkRecord { failures, sink }) in ck.begin(label, plan)? {
                let out = ChunkOut {
                    failures,
                    sink: observe.then_some(sink),
                };
                results[chunk].set(out).expect("chunks are recorded once");
            }
            Some((Mutex::new(ck), label))
        }
        None => None,
    };

    let threads = cfg.resolved_threads().min(chunk_count);
    let next = AtomicUsize::new(0);
    // First trial-panic payload, carried across the scope join so the
    // caller sees the trial's own panic, not the scope's generic one.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let ck_failure: Mutex<Option<CheckpointError>> = Mutex::new(None);
    let (results_ref, init_ref, trial_ref, ck_ref) = (&results, &init, &trial, &ck);

    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // `init` and `trial` run under `catch_unwind` so a
                // panicking closure stops this worker cleanly; the
                // payload is stashed instead of unwinding through the
                // scope (which would replace it with "a scoped thread
                // panicked").
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut state = init_ref();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunk_count {
                            break;
                        }
                        if results_ref[c].get().is_some() {
                            continue; // restored from the checkpoint
                        }
                        let start = c * chunk_size;
                        let len = chunk_size.min(trials - start);
                        let mut failures = 0usize;
                        let mut mem = observe.then(MemorySink::new);
                        let mut noop = NoopSink;
                        for i in start..start + len {
                            let seed = derive_trial_seed(base_seed, i as u64);
                            let sink: &mut dyn Sink = match mem.as_mut() {
                                Some(m) => m,
                                None => &mut noop,
                            };
                            if trial_ref(seed, &mut state, sink) {
                                failures += 1;
                            }
                        }
                        if let Some((ck, label)) = ck_ref {
                            let empty = MemorySink::new();
                            let chunk_sink = mem.as_ref().unwrap_or(&empty);
                            let appended = ck
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .append_chunk(label, c, start, len, failures, chunk_sink);
                            if let Err(e) = appended {
                                // Stop the other workers early; the
                                // run fails with the typed error.
                                next.fetch_add(chunk_count, Ordering::Relaxed);
                                let mut slot = ck_failure.lock().unwrap_or_else(|e| e.into_inner());
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                        let out = ChunkOut {
                            failures,
                            sink: mem,
                        };
                        results_ref[c].set(out).expect("each chunk is claimed once");
                    }
                }));
                if let Err(payload) = caught {
                    // Stop the other workers early; the estimate is
                    // void anyway.
                    next.fetch_add(chunk_count, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            });
        }
    });
    // Workers catch their own panics, so the scope itself cannot fail.
    let () = scope_result.expect("worker panics are caught inside the workers");
    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(payload);
    }
    if let Some(e) = ck_failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }

    // Chunk-ordered reduction. Counter addition and histogram merges
    // are commutative, so this equals any other order — walking the
    // index order just makes the determinism obvious.
    let mut failures = 0usize;
    let mut sink = MemorySink::new();
    for slot in &results {
        let out = slot.get().expect("all chunks completed");
        failures += out.failures;
        if let Some(mem) = &out.sink {
            sink.merge(mem);
        }
    }
    Ok(Reduction { failures, sink })
}

/// The seed trial `i` runs under: a splitmix64 finalizer over the
/// trial index mixed into `base_seed`, so nearby trials get unrelated
/// RNG streams and a trial's randomness is a pure function of
/// `(base_seed, index)` — the property that makes parallel, resumed,
/// and serial runs bit-identical.
pub fn derive_trial_seed(base_seed: u64, index: u64) -> u64 {
    splitmix64(base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_chunks_are_a_pure_function_of_trials() {
        assert_eq!(auto_chunk_size(1), 1);
        assert_eq!(auto_chunk_size(10), 10);
        assert_eq!(auto_chunk_size(40), 16);
        assert_eq!(auto_chunk_size(20_000), 312);
        assert_eq!(auto_chunk_size(400_000), MAX_AUTO_CHUNK);
    }

    #[test]
    fn resolved_chunk_size_clamps_to_trials() {
        let cfg = MonteCarloConfig::auto().chunk_size(1 << 20);
        assert_eq!(cfg.resolved_chunk_size(100), 100);
        assert_eq!(MonteCarloConfig::auto().resolved_chunk_size(5), 5);
    }

    #[test]
    fn default_threads_override_round_trips() {
        // Serial configs ignore the override entirely.
        assert_eq!(MonteCarloConfig::serial().resolved_threads(), 1);
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(MonteCarloConfig::auto().resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn trial_seeds_are_stateless_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_trial_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_trial_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut seen = std::collections::BTreeSet::new();
        for s in a {
            assert!(seen.insert(s), "seed collision");
        }
    }

    #[test]
    fn resumed_chunks_are_skipped_not_recomputed() {
        let dir = std::env::temp_dir().join("dut_core_executor_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("skip.jsonl");
        let _ = std::fs::remove_file(&path);
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(3);
        let cfg = MonteCarloConfig::serial().chunk_size(50);

        let mut ck = Checkpoint::open(&path).unwrap();
        let full = run_chunked(cfg, 500, 9, false, Some((&mut ck, "cell")), || (), trial).unwrap();
        assert_eq!(ck.completed_chunks("cell"), 10);
        let lines_after_first = std::fs::read_to_string(&path).unwrap().lines().count();

        // Re-running against the same file restores every chunk and
        // appends nothing new.
        let again = run_chunked(cfg, 500, 9, false, Some((&mut ck, "cell")), || (), trial).unwrap();
        assert_eq!(again.failures, full.failures);
        let lines_after_second = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_after_first, lines_after_second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failure_counts_are_chunk_and_thread_invariant() {
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(5);
        let mut counts = Vec::new();
        for cfg in [
            MonteCarloConfig::serial(),
            MonteCarloConfig::with_threads(2).chunk_size(7),
            MonteCarloConfig::with_threads(8).chunk_size(101),
            MonteCarloConfig::auto(),
        ] {
            let red = run_chunked(cfg, 1000, 42, false, None, || (), trial).unwrap();
            counts.push(red.failures);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
