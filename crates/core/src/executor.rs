//! The deterministic parallel Monte-Carlo executor.
//!
//! Every estimate in this repository — each cell of an experiment
//! grid, each differential fuzz budget — is a loop of independent
//! boolean trials. This module runs those loops in parallel while
//! keeping the result **bit-identical at any thread count**:
//!
//! * **Stateless per-trial seeding.** Trial `i`'s RNG seed is
//!   [`derive_trial_seed`]`(base_seed, i)` — a splitmix64 finalizer
//!   over the trial *index*, the same counter-stream trick the fault
//!   substrate uses — so a trial's randomness depends only on
//!   `(base_seed, i)`, never on which worker ran it or what ran
//!   before it.
//! * **Fixed chunk geometry.** Trials are partitioned into contiguous
//!   chunks whose size is a pure function of the trial count (or an
//!   explicit [`MonteCarloConfig::chunk_size`]) — never of the thread
//!   count. Workers claim whole chunks from an atomic counter
//!   (work-stealing: a fast worker simply claims more chunks).
//! * **Order-independent reduction.** Each chunk produces a failure
//!   count and (for observed runs) a private [`MemorySink`]. Failure
//!   counts add and sinks merge element-wise — both commutative and
//!   associative over integers — and the final reduction walks chunks
//!   in index order, so the totals are identical whether the run used
//!   1 thread or 64, chunk size 16 or 1024.
//! * **Per-worker state.** `init()` runs once per worker; trials reuse
//!   that worker's scratch buffers (`TesterScratch` and friends), so
//!   the per-trial hot path allocates nothing.
//!
//! Chunks are also the unit of checkpointing: with a
//! [`crate::checkpoint::Checkpoint`] attached, each completed chunk is
//! appended (and flushed) to a JSONL file, and a rerun skips every
//! recorded chunk — the final estimate is bit-identical to an
//! uninterrupted run because chunk geometry and seeds don't depend on
//! who computed a chunk.
//!
//! The ergonomic entry points live in [`crate::montecarlo`]
//! ([`crate::montecarlo::MonteCarlo`] and the free `estimate_*`
//! functions); this module holds the engine and its configuration.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use dut_obs::{MemorySink, NoopSink, Sink};

use crate::checkpoint::{Checkpoint, CheckpointError, ChunkRecord, Plan, PlanStop};

/// Largest chunk the automatic policy picks. 1024 trials per chunk
/// keeps checkpoint files small (≤ ~400 lines for a 400k-trial cell)
/// while leaving chunk-claim contention negligible.
pub const MAX_AUTO_CHUNK: usize = 1024;

/// Process-wide default worker count; 0 means "ask the OS".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by configs with `threads == 0`
/// (the `--threads` flag of the experiments binary lands here).
/// Passing 0 restores the OS-reported parallelism. Thread count never
/// affects results — only wall-clock time.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count an auto-threaded config resolves to: the
/// [`set_default_threads`] override if set, else the OS-reported
/// available parallelism.
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// The chunk size the automatic policy picks for `trials`: about 64
/// chunks per run, clamped to `[16, `[`MAX_AUTO_CHUNK`]`]` and never
/// larger than the run. A pure function of `trials` — deliberately
/// independent of thread count — so chunk geometry (and therefore
/// checkpoint layout) is reproducible.
pub fn auto_chunk_size(trials: usize) -> usize {
    (trials / 64).clamp(16, MAX_AUTO_CHUNK).min(trials.max(1))
}

/// The α the adaptive confidence sequence spends across its looks: the
/// whole sequence of stop decisions is simultaneously valid at level
/// `1 − ADAPTIVE_ALPHA` (α is peeled as `α/((k+1)(k+2))` over looks
/// `k = 0, 1, ..` — the peelings sum to exactly α).
pub const ADAPTIVE_ALPHA: f64 = 1e-3;

/// The z-score the adaptive confidence sequence uses at its `look`-th
/// chunk boundary (0-indexed): `sqrt(2·ln((k+1)(k+2)/α))` with
/// α = [`ADAPTIVE_ALPHA`], the subgaussian quantile bound for the
/// peeled level `α/((k+1)(k+2))`. Monotonically widening in `k`, which
/// is what makes every look simultaneously valid — an interval that
/// cleared a threshold stays cleared in expectation, and the union
/// bound over looks is exactly α.
pub fn sequence_z(look: usize) -> f64 {
    let k = look as f64;
    (2.0 * ((k + 1.0) * (k + 2.0) / ADAPTIVE_ALPHA).ln()).sqrt()
}

/// When a Monte-Carlo run stops.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum StopRule {
    /// Run every trial of the budget (the historical behavior; the
    /// estimate is bit-identical to pre-adaptive builds).
    #[default]
    FixedBudget,
    /// Stop at the first chunk boundary (in chunk-index order) where
    /// the always-valid confidence sequence either shrinks below
    /// `tolerance` or clears `threshold` entirely (interval wholly
    /// below or wholly above it). Decisions are made on the contiguous
    /// chunk prefix only, so any thread count — and a kill/resume
    /// through the checkpoint — agrees on the stopping chunk.
    Adaptive {
        /// Stop once `upper − lower ≤ tolerance`.
        tolerance: f64,
        /// Stop once the interval no longer straddles this value
        /// (`None` disables threshold-clearing stops).
        threshold: Option<f64>,
    },
}

impl From<StopRule> for PlanStop {
    fn from(stop: StopRule) -> PlanStop {
        match stop {
            StopRule::FixedBudget => PlanStop::FixedBudget,
            StopRule::Adaptive {
                tolerance,
                threshold,
            } => PlanStop::Adaptive {
                tolerance_bits: tolerance.to_bits(),
                threshold_bits: threshold.map(f64::to_bits),
            },
        }
    }
}

/// How a Monte-Carlo run executes. The thread and chunk knobs **never**
/// change what it computes; the [`StopRule`] is the one semantic field
/// (an adaptive run may spend fewer trials), and it is itself
/// deterministic — the same `(trials, base_seed, stop)` stops at the
/// same trial at any thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonteCarloConfig {
    /// Worker threads; 0 = [`default_threads`].
    pub threads: usize,
    /// Trials per chunk; 0 = [`auto_chunk_size`].
    pub chunk_size: usize,
    /// When the run stops (fixed budget by default).
    pub stop: StopRule,
}

impl MonteCarloConfig {
    /// Auto threads, auto chunk size — what the free
    /// `estimate_failure_rate*` functions use.
    pub fn auto() -> Self {
        MonteCarloConfig::default()
    }

    /// Single-threaded execution (the serial side of the
    /// serial-vs-parallel differential tests).
    pub fn serial() -> Self {
        MonteCarloConfig {
            threads: 1,
            ..MonteCarloConfig::default()
        }
    }

    /// Exactly `threads` workers (0 = auto).
    pub fn with_threads(threads: usize) -> Self {
        MonteCarloConfig {
            threads,
            ..MonteCarloConfig::default()
        }
    }

    /// Auto threads and chunks with confidence-sequence early stopping:
    /// the run halts at the first chunk boundary where the always-valid
    /// interval is narrower than `tolerance` (see
    /// [`StopRule::Adaptive`]; add a decision threshold with
    /// [`MonteCarloConfig::stop_threshold`] to stop as soon as the
    /// interval clears it).
    ///
    /// # Panics
    ///
    /// Panics unless `tolerance` is finite and positive.
    pub fn adaptive(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0,
            "adaptive tolerance must be a positive finite width"
        );
        MonteCarloConfig {
            stop: StopRule::Adaptive {
                tolerance,
                threshold: None,
            },
            ..MonteCarloConfig::default()
        }
    }

    /// Sets the decision threshold of an adaptive config: the run stops
    /// as soon as the confidence sequence lies entirely below or
    /// entirely above `threshold` (the comparison the caller's verdict
    /// makes is then already decided).
    ///
    /// # Panics
    ///
    /// Panics on a fixed-budget config — a threshold without an
    /// adaptive stop rule would be silently ignored.
    pub fn stop_threshold(mut self, threshold: f64) -> Self {
        match &mut self.stop {
            StopRule::Adaptive { threshold: t, .. } => *t = Some(threshold),
            StopRule::FixedBudget => {
                panic!("stop_threshold requires MonteCarloConfig::adaptive")
            }
        }
        self
    }

    /// Whether this config stops adaptively.
    pub fn is_adaptive(&self) -> bool {
        matches!(self.stop, StopRule::Adaptive { .. })
    }

    /// Sets the chunk size (0 = auto). Affects checkpoint granularity
    /// and scheduling only, never results — but a checkpoint records
    /// its chunk size, so resuming must use the same value.
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// The worker count this config resolves to right now.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
        .max(1)
    }

    /// The chunk size this config resolves to for a `trials`-sized run.
    pub fn resolved_chunk_size(&self, trials: usize) -> usize {
        if self.chunk_size == 0 {
            auto_chunk_size(trials)
        } else {
            self.chunk_size.min(trials.max(1))
        }
    }
}

/// What one chunk produced (or was restored with).
#[derive(Debug)]
struct ChunkOut {
    failures: usize,
    sink: Option<MemorySink>,
}

/// The chunk-ordered reduction of a whole run.
#[derive(Debug)]
pub(crate) struct Reduction {
    /// Trials actually counted (the full budget for fixed-budget runs;
    /// the stopping prefix for adaptive runs).
    pub trials: usize,
    /// Failed trials among the counted ones.
    pub failures: usize,
    /// Number of chunks the counted trials span (`stop chunk + 1` for
    /// adaptive runs) — the number of confidence-sequence looks taken.
    pub chunks_counted: usize,
    /// Merge of every counted chunk's sink, in chunk-index order
    /// (empty for unobserved runs).
    pub sink: MemorySink,
}

/// The contiguous-prefix scanner behind adaptive stopping: as chunk
/// results land (in any order), the holder of the mutex advances
/// through them **in chunk-index order**, accumulating counts and
/// evaluating the stop rule at each boundary. Because the looks are a
/// pure function of the ordered prefix — never of which worker, which
/// thread count, or which resumed run produced a chunk — every
/// execution stops at the same chunk.
#[derive(Debug)]
struct PrefixScan {
    /// Next chunk index the scanner is waiting on.
    next: usize,
    /// Trials accumulated over chunks `0..next`.
    trials: usize,
    /// Failures accumulated over chunks `0..next`.
    failures: usize,
    /// Set once a stop decision was made (the scanner never advances
    /// past its stopping boundary, so the triggering counts are final).
    done: bool,
}

/// Evaluates the stop rule at the `boundary`-th look (0-indexed chunk
/// boundary) given the prefix counts.
fn should_stop(stop: StopRule, boundary: usize, trials: usize, failures: usize) -> bool {
    let StopRule::Adaptive {
        tolerance,
        threshold,
    } = stop
    else {
        return false;
    };
    let est = crate::montecarlo::ErrorEstimate::from_counts(trials, failures, sequence_z(boundary));
    est.upper - est.lower <= tolerance || threshold.is_some_and(|t| est.upper < t || est.lower > t)
}

/// Advances the prefix scanner over every landed chunk and records a
/// stop decision into `stop_chunk` (a `fetch_min`, so the first
/// decision wins; there is only ever one because `done` latches).
fn advance_prefix(
    prefix: &Mutex<PrefixScan>,
    results: &[OnceLock<ChunkOut>],
    stop: StopRule,
    chunk_size: usize,
    total_trials: usize,
    stop_chunk: &AtomicUsize,
) {
    let mut p = prefix.lock().unwrap_or_else(|e| e.into_inner());
    if p.done {
        return;
    }
    while p.next < results.len() {
        let Some(out) = results[p.next].get() else {
            break;
        };
        let start = p.next * chunk_size;
        p.trials += chunk_size.min(total_trials - start);
        p.failures += out.failures;
        if should_stop(stop, p.next, p.trials, p.failures) {
            stop_chunk.fetch_min(p.next, Ordering::Relaxed);
            p.done = true;
            return;
        }
        p.next += 1;
    }
}

/// Runs `trials` boolean trials chunk-parallel and reduces them
/// deterministically. `trial(seed, state, sink)` returns `true` iff
/// the trial **failed**; `init()` runs once per worker. With
/// `observe`, each chunk records into a private [`MemorySink`];
/// without, trials see a [`NoopSink`] (`enabled() == false`) and the
/// reduction's sink stays empty.
///
/// Panics in `init`/`trial` re-raise their original payload on the
/// caller. Checkpoint failures surface as `Err` and stop the run early.
pub(crate) fn run_chunked<S, I, F>(
    cfg: MonteCarloConfig,
    trials: usize,
    base_seed: u64,
    observe: bool,
    checkpoint: Option<(&mut Checkpoint, &str)>,
    init: I,
    trial: F,
) -> Result<Reduction, CheckpointError>
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
{
    assert!(trials > 0, "callers guard trials == 0");
    let chunk_size = cfg.resolved_chunk_size(trials);
    let chunk_count = trials.div_ceil(chunk_size);
    let results: Vec<OnceLock<ChunkOut>> = (0..chunk_count).map(|_| OnceLock::new()).collect();

    let ck = match checkpoint {
        Some((ck, label)) => {
            let plan = Plan {
                trials,
                chunk_size,
                base_seed,
                observed: observe,
                stop: cfg.stop.into(),
            };
            for (chunk, ChunkRecord { failures, sink }) in ck.begin(label, plan)? {
                let out = ChunkOut {
                    failures,
                    sink: observe.then_some(sink),
                };
                results[chunk].set(out).expect("chunks are recorded once");
            }
            Some((Mutex::new(ck), label))
        }
        None => None,
    };

    // Adaptive stopping state. `stop_chunk` is the boundary the
    // confidence sequence stopped at (usize::MAX = never); the prefix
    // scanner re-derives the same boundary from checkpoint-restored
    // chunks, so a kill/resume agrees with an uninterrupted run even
    // when speculative chunks beyond the stop landed in the file.
    let adaptive = matches!(cfg.stop, StopRule::Adaptive { .. });
    let stop_chunk = AtomicUsize::new(usize::MAX);
    let prefix = Mutex::new(PrefixScan {
        next: 0,
        trials: 0,
        failures: 0,
        done: false,
    });
    if adaptive {
        // Scan whatever the checkpoint restored before starting work —
        // a fully recorded run must stop without recomputing anything.
        advance_prefix(&prefix, &results, cfg.stop, chunk_size, trials, &stop_chunk);
    }

    let threads = cfg.resolved_threads().min(chunk_count);
    let next = AtomicUsize::new(0);
    // First trial-panic payload, carried across the scope join so the
    // caller sees the trial's own panic, not the scope's generic one.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let ck_failure: Mutex<Option<CheckpointError>> = Mutex::new(None);
    let (results_ref, init_ref, trial_ref, ck_ref) = (&results, &init, &trial, &ck);
    let (prefix_ref, stop_ref) = (&prefix, &stop_chunk);

    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // `init` and `trial` run under `catch_unwind` so a
                // panicking closure stops this worker cleanly; the
                // payload is stashed instead of unwinding through the
                // scope (which would replace it with "a scoped thread
                // panicked").
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut state = init_ref();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunk_count {
                            break;
                        }
                        if c > stop_ref.load(Ordering::Relaxed) {
                            continue; // past an adaptive stop decision
                        }
                        if results_ref[c].get().is_some() {
                            continue; // restored from the checkpoint
                        }
                        let start = c * chunk_size;
                        let len = chunk_size.min(trials - start);
                        let mut failures = 0usize;
                        let mut mem = observe.then(MemorySink::new);
                        let mut noop = NoopSink;
                        for i in start..start + len {
                            let seed = derive_trial_seed(base_seed, i as u64);
                            let sink: &mut dyn Sink = match mem.as_mut() {
                                Some(m) => m,
                                None => &mut noop,
                            };
                            if trial_ref(seed, &mut state, sink) {
                                failures += 1;
                            }
                        }
                        if let Some((ck, label)) = ck_ref {
                            let empty = MemorySink::new();
                            let chunk_sink = mem.as_ref().unwrap_or(&empty);
                            let appended = ck
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .append_chunk(label, c, start, len, failures, chunk_sink);
                            if let Err(e) = appended {
                                // Stop the other workers early; the
                                // run fails with the typed error.
                                next.fetch_add(chunk_count, Ordering::Relaxed);
                                let mut slot = ck_failure.lock().unwrap_or_else(|e| e.into_inner());
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                break;
                            }
                        }
                        let out = ChunkOut {
                            failures,
                            sink: mem,
                        };
                        results_ref[c].set(out).expect("each chunk is claimed once");
                        if adaptive {
                            // Advance the in-order scanner past every
                            // landed chunk; it may decide to stop here.
                            advance_prefix(
                                prefix_ref,
                                results_ref,
                                cfg.stop,
                                chunk_size,
                                trials,
                                stop_ref,
                            );
                        }
                    }
                }));
                if let Err(payload) = caught {
                    // Stop the other workers early; the estimate is
                    // void anyway.
                    next.fetch_add(chunk_count, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            });
        }
    });
    // Workers catch their own panics, so the scope itself cannot fail.
    let () = scope_result.expect("worker panics are caught inside the workers");
    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(payload);
    }
    if let Some(e) = ck_failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }

    // Chunk-ordered reduction over the counted prefix: every chunk for
    // a fixed-budget run, chunks `0..=stop` for an adaptively stopped
    // one (workers may have computed speculative chunks beyond the
    // stop while the decision was being made; those are discarded, so
    // the counted prefix is identical at any thread count). Counter
    // addition and histogram merges are commutative, so this equals
    // any other order — walking the index order just makes the
    // determinism obvious.
    let chunks_counted = match stop_chunk.load(Ordering::Relaxed) {
        usize::MAX => chunk_count,
        stop => stop + 1,
    };
    let mut counted_trials = 0usize;
    let mut failures = 0usize;
    let mut sink = MemorySink::new();
    for (c, slot) in results.iter().enumerate().take(chunks_counted) {
        let out = slot.get().expect("all counted chunks completed");
        counted_trials += chunk_size.min(trials - c * chunk_size);
        failures += out.failures;
        if let Some(mem) = &out.sink {
            sink.merge(mem);
        }
    }
    Ok(Reduction {
        trials: counted_trials,
        failures,
        chunks_counted,
        sink,
    })
}

/// The seed trial `i` runs under: a splitmix64 finalizer over the
/// trial index mixed into `base_seed`, so nearby trials get unrelated
/// RNG streams and a trial's randomness is a pure function of
/// `(base_seed, index)` — the property that makes parallel, resumed,
/// and serial runs bit-identical.
pub fn derive_trial_seed(base_seed: u64, index: u64) -> u64 {
    splitmix64(base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_chunks_are_a_pure_function_of_trials() {
        assert_eq!(auto_chunk_size(1), 1);
        assert_eq!(auto_chunk_size(10), 10);
        assert_eq!(auto_chunk_size(40), 16);
        assert_eq!(auto_chunk_size(20_000), 312);
        assert_eq!(auto_chunk_size(400_000), MAX_AUTO_CHUNK);
    }

    #[test]
    fn resolved_chunk_size_clamps_to_trials() {
        let cfg = MonteCarloConfig::auto().chunk_size(1 << 20);
        assert_eq!(cfg.resolved_chunk_size(100), 100);
        assert_eq!(MonteCarloConfig::auto().resolved_chunk_size(5), 5);
    }

    #[test]
    fn default_threads_override_round_trips() {
        // Serial configs ignore the override entirely.
        assert_eq!(MonteCarloConfig::serial().resolved_threads(), 1);
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(MonteCarloConfig::auto().resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn trial_seeds_are_stateless_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| derive_trial_seed(7, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_trial_seed(7, i)).collect();
        assert_eq!(a, b);
        let mut seen = std::collections::BTreeSet::new();
        for s in a {
            assert!(seen.insert(s), "seed collision");
        }
    }

    #[test]
    fn resumed_chunks_are_skipped_not_recomputed() {
        let dir = std::env::temp_dir().join("dut_core_executor_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("skip.jsonl");
        let _ = std::fs::remove_file(&path);
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(3);
        let cfg = MonteCarloConfig::serial().chunk_size(50);

        let mut ck = Checkpoint::open(&path).unwrap();
        let full = run_chunked(cfg, 500, 9, false, Some((&mut ck, "cell")), || (), trial).unwrap();
        assert_eq!(ck.completed_chunks("cell"), 10);
        let lines_after_first = std::fs::read_to_string(&path).unwrap().lines().count();

        // Re-running against the same file restores every chunk and
        // appends nothing new.
        let again = run_chunked(cfg, 500, 9, false, Some((&mut ck, "cell")), || (), trial).unwrap();
        assert_eq!(again.failures, full.failures);
        let lines_after_second = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines_after_first, lines_after_second);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sequence_z_widens_monotonically_from_above_fixed_z() {
        let zs: Vec<f64> = (0..12).map(sequence_z).collect();
        assert!(zs.windows(2).all(|w| w[0] < w[1]), "{zs:?}");
        // Even the first look is wider than the fixed-budget 1.96 —
        // the price of always-valid peeking.
        assert!(zs[0] > 1.96);
    }

    #[test]
    #[should_panic(expected = "requires MonteCarloConfig::adaptive")]
    fn stop_threshold_requires_adaptive() {
        let _ = MonteCarloConfig::auto().stop_threshold(0.5);
    }

    #[test]
    fn fixed_budget_counts_every_trial() {
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(7);
        let cfg = MonteCarloConfig::serial().chunk_size(64);
        let red = run_chunked(cfg, 1000, 13, false, None, || (), trial).unwrap();
        assert_eq!(red.trials, 1000);
        assert_eq!(red.chunks_counted, 1000usize.div_ceil(64));
    }

    #[test]
    fn adaptive_threshold_stops_at_the_first_clear_boundary() {
        // Zero failures: the very first look's interval sits far below
        // a 0.5 threshold, so exactly one chunk is spent.
        let trial = |_seed: u64, (): &mut (), _sink: &mut dyn Sink| false;
        let cfg = MonteCarloConfig::adaptive(1e-9)
            .stop_threshold(0.5)
            .chunk_size(100);
        let red = run_chunked(cfg, 10_000, 3, false, None, || (), trial).unwrap();
        assert_eq!(red.chunks_counted, 1);
        assert_eq!(red.trials, 100);
        assert_eq!(red.failures, 0);
    }

    #[test]
    fn adaptive_stop_is_thread_invariant() {
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(20);
        let mut outs = Vec::new();
        for threads in [1, 2, 8] {
            let cfg = MonteCarloConfig {
                threads,
                ..MonteCarloConfig::adaptive(0.05)
                    .stop_threshold(0.5)
                    .chunk_size(25)
            };
            let red = run_chunked(cfg, 10_000, 11, false, None, || (), trial).unwrap();
            outs.push((red.trials, red.failures, red.chunks_counted));
        }
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
        assert!(outs[0].0 < 10_000, "should stop early: {outs:?}");
    }

    #[test]
    fn adaptive_without_a_stop_runs_the_full_budget() {
        // A tolerance far below what the budget can resolve, and no
        // threshold: the sequence never stops and the run degrades to
        // the fixed budget (with the wider final-look z applied by the
        // montecarlo layer, not here).
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(2);
        let cfg = MonteCarloConfig::adaptive(1e-12).chunk_size(50);
        let red = run_chunked(cfg, 500, 21, false, None, || (), trial).unwrap();
        assert_eq!(red.trials, 500);
        assert_eq!(red.chunks_counted, 10);
    }

    #[test]
    fn failure_counts_are_chunk_and_thread_invariant() {
        let trial = |seed: u64, (): &mut (), _sink: &mut dyn Sink| seed.is_multiple_of(5);
        let mut counts = Vec::new();
        for cfg in [
            MonteCarloConfig::serial(),
            MonteCarloConfig::with_threads(2).chunk_size(7),
            MonteCarloConfig::with_threads(8).chunk_size(101),
            MonteCarloConfig::auto(),
        ] {
            let red = run_chunked(cfg, 1000, 42, false, None, || (), trial).unwrap();
            counts.push(red.failures);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
