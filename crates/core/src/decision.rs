//! Decisions and network decision rules.

use std::fmt;

/// The output of a tester: `Accept` means "looks uniform", `Reject` means
/// "raise an alarm" (ε-far from uniform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The input distribution looks uniform.
    Accept,
    /// The input distribution looks ε-far from uniform.
    Reject,
}

impl Decision {
    /// `true` iff this is `Accept`.
    #[inline]
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept)
    }

    /// `true` iff this is `Reject`.
    #[inline]
    pub fn is_reject(&self) -> bool {
        matches!(self, Decision::Reject)
    }

    /// Builds a decision from a boolean "accept" flag.
    #[inline]
    pub fn from_accept(accept: bool) -> Decision {
        if accept {
            Decision::Accept
        } else {
            Decision::Reject
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Accept => write!(f, "accept"),
            Decision::Reject => write!(f, "reject"),
        }
    }
}

/// How a network aggregates per-node decisions into one verdict
/// (the paper's §2 "Distributed models").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionRule {
    /// The network accepts iff *all* nodes accept ("some node raised an
    /// alarm" rejects). The standard distributed-decision rule.
    And,
    /// The network rejects iff at least `T` nodes reject.
    Threshold(usize),
}

impl DecisionRule {
    /// Applies the rule to a count of rejecting nodes.
    pub fn decide(&self, rejecting_nodes: usize) -> Decision {
        match self {
            DecisionRule::And => Decision::from_accept(rejecting_nodes == 0),
            DecisionRule::Threshold(t) => Decision::from_accept(rejecting_nodes < *t),
        }
    }
}

impl fmt::Display for DecisionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionRule::And => write!(f, "and"),
            DecisionRule::Threshold(t) => write!(f, "threshold({t})"),
        }
    }
}

/// The outcome of running a distributed tester once: the network's verdict
/// plus how many nodes individually voted to reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkOutcome {
    /// The network-level verdict after applying the decision rule.
    pub decision: Decision,
    /// Number of nodes that individually rejected.
    pub rejecting_nodes: usize,
    /// Total number of (possibly virtual) nodes that participated.
    pub nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_rule_rejects_on_any_alarm() {
        assert_eq!(DecisionRule::And.decide(0), Decision::Accept);
        assert_eq!(DecisionRule::And.decide(1), Decision::Reject);
        assert_eq!(DecisionRule::And.decide(100), Decision::Reject);
    }

    #[test]
    fn threshold_rule_needs_t_alarms() {
        let rule = DecisionRule::Threshold(5);
        assert_eq!(rule.decide(0), Decision::Accept);
        assert_eq!(rule.decide(4), Decision::Accept);
        assert_eq!(rule.decide(5), Decision::Reject);
        assert_eq!(rule.decide(6), Decision::Reject);
    }

    #[test]
    fn threshold_zero_always_rejects() {
        assert_eq!(DecisionRule::Threshold(0).decide(0), Decision::Reject);
    }

    #[test]
    fn decision_helpers() {
        assert!(Decision::Accept.is_accept());
        assert!(!Decision::Accept.is_reject());
        assert!(Decision::Reject.is_reject());
        assert_eq!(Decision::from_accept(true), Decision::Accept);
        assert_eq!(Decision::from_accept(false), Decision::Reject);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Decision::Accept.to_string(), "accept");
        assert_eq!(DecisionRule::And.to_string(), "and");
        assert_eq!(DecisionRule::Threshold(7).to_string(), "threshold(7)");
    }
}
