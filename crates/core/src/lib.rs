//! Distributed uniformity testing — the core algorithms of Fischer, Meir
//! and Oshman, *Distributed Uniformity Testing* (PODC 2018).
//!
//! In the distributed ε-uniformity testing problem, a network of `k`
//! nodes each holds `s` iid samples from an unknown distribution μ on
//! `{0, .., n-1}`, and the network must decide whether μ is the uniform
//! distribution or ε-far from it in L1 distance — using as few samples
//! per node as possible, in the paper's three models (0-round with the
//! AND decision rule, 0-round with a threshold rule, and as a building
//! block inside LOCAL/CONGEST protocols).
//!
//! # Module map
//!
//! * [`gap`] — the single-collision (δ, 1+Θ(ε²))-gap tester `A_δ`
//!   (Theorem 3.1 / Lemma 3.4): `s = √(2δn)` samples, accept iff all
//!   distinct.
//! * [`amplify`] — the m-repetition amplifier (tester `B` of §3.2.1).
//! * [`params`] — every parameter formula the proofs use, in one place:
//!   sample counts, the γ slack of Eq. (1), `C_p`, AND-rule plans
//!   (Theorem 1.1), threshold plans (Theorem 1.2), and Chernoff/normal
//!   threshold windows.
//! * [`zero_round`] — the distributed 0-round testers: network-of-k
//!   simulation under the AND rule and the threshold rule.
//! * [`asymmetric`] — the asymmetric-cost generalization of §4: per-node
//!   sample budgets `s_i = C·T_i` minimizing the maximum individual cost,
//!   for both decision rules, plus the Lemma 4.1 extremal-point check.
//! * [`baselines`] — centralized testers for comparison: the classic
//!   collision-counting tester (Paninski-style) and the single-collision
//!   tester run centrally.
//! * [`identity`] — the filter reduction from testing identity to a known
//!   distribution η down to uniformity testing, which "continues to work
//!   in the distributed setting" (§1).
//! * [`montecarlo`] — parallel Monte-Carlo error estimation with Wilson
//!   score intervals (how every experiment measures error probabilities),
//!   built on the deterministic chunk-parallel [`executor`] with
//!   JSONL [`checkpoint`]/resume — results are bit-identical at any
//!   thread count.
//! * [`decision`] — accept/reject decision types and network decision
//!   rules.
//!
//! # Quickstart
//!
//! ```rust
//! use dut_core::zero_round::ThresholdNetworkTester;
//! use dut_core::decision::Decision;
//! use dut_distributions::{families, DiscreteDistribution};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 1 << 20; // domain size
//! let k = 150_000; // network size
//! let epsilon = 0.5;
//!
//! let tester = ThresholdNetworkTester::plan(n, k, epsilon, 1.0 / 3.0)?;
//! let mut rng = StdRng::seed_from_u64(42);
//!
//! let uniform = DiscreteDistribution::uniform(n);
//! let outcome = tester.run(&uniform, &mut rng);
//! assert_eq!(outcome.decision, Decision::Accept);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amplify;
pub mod asymmetric;
pub mod baselines;
pub mod checkpoint;
pub mod decision;
pub mod error;
pub mod executor;
pub mod gap;
pub mod identity;
pub mod montecarlo;
pub mod params;
pub mod scratch;
pub mod zero_round;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use decision::Decision;
pub use error::PlanError;
pub use executor::MonteCarloConfig;
pub use gap::GapTester;
pub use montecarlo::{MonteCarlo, MonteCarloError};
pub use scratch::TesterScratch;
