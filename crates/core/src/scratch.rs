//! Reusable per-trial buffers for Monte-Carlo-scale simulation.
//!
//! A single tester run is cheap; the experiments run millions of them.
//! The allocating entry points ([`crate::gap::GapTester::run`] and
//! friends) create a sample `Vec` and a sort buffer per trial, which at
//! Monte-Carlo scale turns the allocator into the bottleneck. Each
//! tester therefore has a `run_with_scratch` variant threading a
//! [`TesterScratch`] through, so steady-state trials touch the heap only
//! to grow buffers they then keep. Decisions are bit-identical to the
//! allocating variants: the same sample stream is drawn and the
//! generation-stamped collision detector agrees exactly with the sorting
//! one.
//!
//! Pair with [`crate::montecarlo::estimate_failure_rate_with_state`],
//! which gives every worker thread its own scratch:
//!
//! ```rust
//! use dut_core::gap::GapTester;
//! use dut_core::decision::Decision;
//! use dut_core::montecarlo::{estimate_failure_rate_with_state, trial_rng};
//! use dut_core::scratch::TesterScratch;
//! use dut_distributions::DiscreteDistribution;
//!
//! let n = 1 << 12;
//! let tester = GapTester::new(n, 0.05).unwrap();
//! let uniform = DiscreteDistribution::uniform(n);
//! let estimate = estimate_failure_rate_with_state(
//!     5_000,
//!     7,
//!     TesterScratch::new,
//!     |seed, scratch| {
//!         let mut rng = trial_rng(seed);
//!         tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
//!     },
//! )
//! .unwrap();
//! assert!(estimate.rate <= 0.1);
//! ```

use dut_distributions::collision::CollisionScratch;

/// Reusable buffers for one tester's trials: a sample buffer and a
/// collision detector. One scratch serves any mix of testers and domain
/// sizes; buffers grow to the largest seen and stay.
#[derive(Debug, Clone, Default)]
pub struct TesterScratch {
    /// Per-trial sample buffer (cleared, not shrunk, between trials).
    pub(crate) samples: Vec<usize>,
    /// O(s) collision detector with a generation-stamped marking table.
    pub(crate) collision: CollisionScratch,
}

impl TesterScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TesterScratch::default()
    }

    /// Creates a scratch pre-sized for `samples` samples over domain
    /// `0..domain_size`, avoiding even first-trial growth.
    pub fn with_capacity(domain_size: usize, samples: usize) -> Self {
        TesterScratch {
            samples: Vec::with_capacity(samples),
            collision: CollisionScratch::with_domain(domain_size),
        }
    }

    /// The collision detector alone (for `run_on_samples_with` call
    /// sites that gather samples elsewhere).
    pub fn collision_mut(&mut self) -> &mut CollisionScratch {
        &mut self.collision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_constructors() {
        let mut s = TesterScratch::new();
        assert!(!s.collision_mut().has_collision(&[1, 2, 3]));
        let mut p = TesterScratch::with_capacity(64, 8);
        assert!(p.collision_mut().has_collision(&[63, 63]));
    }
}
