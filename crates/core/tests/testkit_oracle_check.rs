//! Monte-Carlo estimates from `dut-core` cross-checked against the
//! exact combinatorial oracles in `dut-testkit`.

use dut_core::montecarlo::estimate_failure_rate;
use dut_distributions::DiscreteDistribution;
use dut_testkit::oracles::all_distinct_probability;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The 95% Wilson interval from a large simulated run must cover the
/// exact collision probability computed by the elementary-symmetric
/// oracle (with a small slack for the 1-in-20 interval miss).
#[test]
fn wilson_interval_covers_exact_collision_probability() {
    let masses = vec![0.4, 0.3, 0.2, 0.1];
    let s = 3;
    let exact_fail = 1.0 - all_distinct_probability(&masses, s);
    let dist = DiscreteDistribution::from_pmf(masses).expect("valid pmf");

    let trials = 20_000;
    let est = estimate_failure_rate(trials, 0x0C0D_E001, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seen = [false; 4];
        (0..s).any(|_| {
            let x = dist.sample(&mut rng);
            std::mem::replace(&mut seen[x], true)
        })
    })
    .expect("trials > 0");

    let slack = 3.0 * (exact_fail * (1.0 - exact_fail) / trials as f64).sqrt();
    assert!(
        est.lower - slack <= exact_fail && exact_fail <= est.upper + slack,
        "exact rate {exact_fail} outside widened interval [{}, {}]",
        est.lower,
        est.upper
    );
}

/// Estimates are a pure function of `(trials, base_seed)` — worker
/// scheduling must not leak into the statistics.
#[test]
fn estimates_are_deterministic_in_the_base_seed() {
    let run = || {
        estimate_failure_rate(4_096, 0x0C0D_E002, |seed| {
            seed.wrapping_mul(2_654_435_761) % 5 == 0
        })
        .expect("trials > 0")
    };
    let a = run();
    let b = run();
    assert_eq!(a.rate, b.rate);
    assert_eq!(a.lower, b.lower);
    assert_eq!(a.upper, b.upper);
}
