//! Serial ↔ parallel differential suite for the Monte-Carlo executor
//! over the real testers (CI's testkit lane).
//!
//! Each test runs one tester's trial closure through
//! `dut_testkit::parallel::config_spread()` — serial, 2 threads, and
//! 8 threads with a ragged chunk size — and asserts bit-identical
//! failure counts, Wilson intervals, and merged `dut-obs` metrics.
//! A final test kills a checkpointed run after a few chunks and
//! resumes it, asserting the stitched result equals the uninterrupted
//! one.

use dut_core::amplify::RepeatedGapTester;
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::trial_rng;
use dut_core::zero_round::AndNetworkTester;
use dut_core::{Checkpoint, MonteCarlo, MonteCarloConfig, TesterScratch};
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_testkit::parallel::{assert_thread_invariant, assert_thread_invariant_observed};

const TRIALS: usize = 2_000;

#[test]
fn gap_tester_is_thread_invariant_observed() {
    let n = 1 << 12;
    let tester = GapTester::new(n, 0.05).expect("plannable");
    let far = paninski_far(n, 1.0).expect("valid family");
    let (est, sink) = assert_thread_invariant_observed(
        TRIALS,
        4242,
        TesterScratch::new,
        |seed, scratch, sink| {
            let mut rng = trial_rng(seed);
            tester.run_with_scratch_observed(&far, &mut rng, scratch, sink) == Decision::Reject
        },
    );
    // ε-far at ε=1 must reject often; and every trial must be metered.
    assert!(est.rate > 0.0, "far input never rejected: {est:?}");
    assert_eq!(sink.counter(dut_obs::keys::CORE_GAP_RUNS) as usize, TRIALS);
}

#[test]
fn amplified_tester_is_thread_invariant() {
    let n = 1 << 12;
    let tester =
        RepeatedGapTester::new(GapTester::new(n, 0.1).expect("plannable"), 3).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    let est = assert_thread_invariant(TRIALS, 77, TesterScratch::new, |seed, scratch| {
        let mut rng = trial_rng(seed);
        tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
    });
    // Amplification drives completeness error below the single-run δ.
    assert!(est.upper < 0.5, "uniform rejected too often: {est:?}");
}

#[test]
fn zero_round_and_network_is_thread_invariant_observed() {
    let n = 1 << 12;
    let tester = AndNetworkTester::plan(n, 64, 0.75, 1.0 / 3.0).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    let (_, sink) =
        assert_thread_invariant_observed(200, 1234, TesterScratch::new, |seed, scratch, sink| {
            let mut rng = trial_rng(seed);
            tester
                .run_with_scratch_observed(&uniform, &mut rng, scratch, sink)
                .decision
                == Decision::Reject
        });
    assert!(sink.counter(dut_obs::keys::CORE_ZERO_ROUND_RUNS) > 0);
}

/// Kill-and-resume round trip: run a checkpointed estimate to
/// completion, replay it from a prefix of the file (as if the process
/// died after k chunks), and require the resumed run — under a
/// *different* thread count — to reproduce the uninterrupted result
/// bit for bit, recomputing only the missing chunks.
#[test]
fn checkpoint_kill_resume_round_trips() {
    let n = 1 << 12;
    let tester = GapTester::new(n, 0.05).expect("plannable");
    let far = paninski_far(n, 1.0).expect("valid family");
    let trial = |seed: u64, scratch: &mut TesterScratch| {
        let mut rng = trial_rng(seed);
        tester.run_with_scratch(&far, &mut rng, scratch) == Decision::Reject
    };
    let cfg = MonteCarloConfig::serial().chunk_size(100);

    let reference = MonteCarlo::new(TRIALS, 9)
        .config(cfg)
        .run_with_state(TesterScratch::new, trial)
        .expect("trials > 0");

    let dir = std::env::temp_dir().join(format!("dut-par-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kill-resume.jsonl");
    let _ = std::fs::remove_file(&path);

    // First incarnation: full checkpointed run.
    let mut ck = Checkpoint::open(&path).unwrap();
    let full = MonteCarlo::new(TRIALS, 9)
        .config(cfg)
        .checkpoint(&mut ck, "kill/resume")
        .run_with_state(TesterScratch::new, trial)
        .expect("usable checkpoint");
    assert_eq!(full, reference, "checkpointing changed the estimate");
    drop(ck);

    // Simulate a kill after 5 chunks: keep the plan line + 5 chunk
    // lines, drop the rest.
    let text = std::fs::read_to_string(&path).unwrap();
    let prefix: Vec<&str> = text.lines().take(6).collect();
    std::fs::write(&path, format!("{}\n", prefix.join("\n"))).unwrap();

    // Second incarnation resumes under a different thread count.
    let mut ck = Checkpoint::open(&path).unwrap();
    assert_eq!(ck.completed_chunks("kill/resume"), 5);
    let resumed = MonteCarlo::new(TRIALS, 9)
        .config(MonteCarloConfig::with_threads(8).chunk_size(100))
        .checkpoint(&mut ck, "kill/resume")
        .run_with_state(TesterScratch::new, trial)
        .expect("usable checkpoint");
    assert_eq!(resumed, reference, "resume diverged from the clean run");
    assert_eq!(
        ck.completed_chunks("kill/resume"),
        TRIALS.div_ceil(100),
        "resume did not complete the remaining chunks"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The thread count is an execution detail, not part of a label's plan
/// identity: a checkpoint written under any `threads` setting must
/// resume under any other (8 → serial, 8 → 3, serial → 8) and stitch to
/// the bit-identical estimate. Only trials / chunk_size / seed /
/// observed / stop rule participate in plan matching.
#[test]
fn checkpoint_resume_accepts_any_thread_count() {
    let n = 1 << 12;
    let tester = GapTester::new(n, 0.05).expect("plannable");
    let far = paninski_far(n, 1.0).expect("valid family");
    let trial = |seed: u64, scratch: &mut TesterScratch| {
        let mut rng = trial_rng(seed);
        tester.run_with_scratch(&far, &mut rng, scratch) == Decision::Reject
    };
    let trials = 1_000;

    let reference = MonteCarlo::new(trials, 31)
        .config(MonteCarloConfig::serial().chunk_size(50))
        .run_with_state(TesterScratch::new, trial)
        .expect("trials > 0");

    let dir = std::env::temp_dir().join(format!("dut-threads-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("any-threads.jsonl");
    let _ = std::fs::remove_file(&path);

    // First incarnation runs on 8 threads; kill it after 3 chunks.
    let mut ck = Checkpoint::open(&path).unwrap();
    MonteCarlo::new(trials, 31)
        .config(MonteCarloConfig::with_threads(8).chunk_size(50))
        .checkpoint(&mut ck, "threads/any")
        .run_with_state(TesterScratch::new, trial)
        .expect("usable checkpoint");
    drop(ck);
    let text = std::fs::read_to_string(&path).unwrap();
    let prefix: Vec<&str> = text.lines().take(4).collect();
    std::fs::write(&path, format!("{}\n", prefix.join("\n"))).unwrap();

    // Resume serially, then (from another killed prefix) on 3 threads;
    // both must accept the plan and reproduce the reference estimate.
    for threads in [1usize, 3] {
        let mut ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.completed_chunks("threads/any"), 3);
        let cfg = if threads == 1 {
            MonteCarloConfig::serial().chunk_size(50)
        } else {
            MonteCarloConfig::with_threads(threads).chunk_size(50)
        };
        let resumed = MonteCarlo::new(trials, 31)
            .config(cfg)
            .checkpoint(&mut ck, "threads/any")
            .run_with_state(TesterScratch::new, trial)
            .expect("a different thread count must not be a PlanMismatch");
        assert_eq!(
            resumed, reference,
            "resume under {threads} thread(s) diverged"
        );
        drop(ck);
        // Re-truncate for the next thread count.
        let text = std::fs::read_to_string(&path).unwrap();
        let prefix: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", prefix.join("\n"))).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
