//! Property-based tests for the core testers and parameter math.

use dut_core::asymmetric::{lemma_4_1_check, CostVector};
use dut_core::decision::{Decision, DecisionRule};
use dut_core::gap::GapTester;
use dut_core::identity::IdentityFilter;
use dut_core::montecarlo::ErrorEstimate;
use dut_core::params::{
    binomial_cdf, binomial_tail_ge, c_p, delta_for_samples, gamma_slack, normal_quantile,
    samples_for_delta,
};
use dut_distributions::distance::l1_to_uniform;
use dut_distributions::DiscreteDistribution;
use proptest::prelude::*;

proptest! {
    #[test]
    fn samples_for_delta_is_maximal(n in 100usize..1_000_000, delta in 0.0001f64..0.5) {
        if let Ok(s) = samples_for_delta(n, delta) {
            let budget = 2.0 * delta * n as f64;
            prop_assert!((s * (s - 1)) as f64 <= budget + 1e-6);
            prop_assert!(((s + 1) * s) as f64 > budget);
            // Round trip: realized delta never exceeds requested.
            prop_assert!(delta_for_samples(n, s) <= delta + 1e-12);
        }
    }

    #[test]
    fn gamma_slack_below_one(n in 1000usize..10_000_000, s in 2usize..100, eps in 0.1f64..1.0) {
        let g = gamma_slack(n, s, eps);
        prop_assert!(g < 1.0);
    }

    #[test]
    fn c_p_exceeds_one(p in 0.01f64..0.49) {
        // The AND rule always needs gap > 1.
        prop_assert!(c_p(p) > 1.0);
    }

    #[test]
    fn normal_quantile_is_monotone(a in 0.01f64..0.99, b in 0.01f64..0.99) {
        if a < b {
            prop_assert!(normal_quantile(a) < normal_quantile(b));
        }
    }

    #[test]
    fn normal_quantile_symmetry(p in 0.01f64..0.5) {
        let lo = normal_quantile(p);
        let hi = normal_quantile(1.0 - p);
        prop_assert!((lo + hi).abs() < 1e-6);
    }

    #[test]
    fn binomial_cdf_monotone_in_m(n in 1usize..1000, p in 0.0f64..1.0, m in 0usize..1000) {
        let m = m.min(n);
        let a = binomial_cdf(n, p, m);
        let b = binomial_cdf(n, p, m + 1);
        prop_assert!(b >= a - 1e-12);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn binomial_tail_complements(n in 1usize..500, p in 0.01f64..0.99, t in 1usize..500) {
        let t = t.min(n);
        let sum = binomial_cdf(n, p, t - 1) + binomial_tail_ge(n, p, t);
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gap_tester_plan_consistency(n in 1000usize..1_000_000, delta in 0.001f64..0.3) {
        if let Ok(t) = GapTester::new(n, delta) {
            prop_assert!(t.delta() <= delta + 1e-12);
            prop_assert!(t.samples() >= 2);
            prop_assert_eq!(t.domain_size(), n);
        }
    }

    #[test]
    fn gap_tester_detects_constant_distribution(n in 100usize..10_000, seed in any::<u64>()) {
        // A point mass always collides: tester must always reject.
        let t = GapTester::with_samples(n, 2).unwrap();
        let mut pmf = vec![0.0; n];
        pmf[0] = 1.0;
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand::rngs::StdRng = &mut rng;
        prop_assert_eq!(t.run(&d, rng), Decision::Reject);
    }

    #[test]
    fn decision_rules_are_monotone(t in 1usize..100, a in 0usize..200, b in 0usize..200) {
        // More alarms never flip a rejection back to acceptance.
        let rule = DecisionRule::Threshold(t);
        let (lo, hi) = (a.min(b), a.max(b));
        if rule.decide(lo) == Decision::Reject {
            prop_assert_eq!(rule.decide(hi), Decision::Reject);
        }
    }

    #[test]
    fn wilson_interval_contains_rate(trials in 1usize..10_000, f_frac in 0.0f64..1.0) {
        let failures = ((trials as f64) * f_frac) as usize;
        let e = ErrorEstimate::from_counts(trials, failures, 1.96);
        prop_assert!(e.lower <= e.rate + 1e-12);
        prop_assert!(e.rate <= e.upper + 1e-12);
        prop_assert!(e.lower >= 0.0 && e.upper <= 1.0);
    }

    #[test]
    fn cost_vector_norms_monotone(costs in proptest::collection::vec(0.1f64..10.0, 1..50)) {
        // Lp norms decrease in p.
        let cv = CostVector::new(costs).unwrap();
        let n2 = cv.inverse_norm(2.0);
        let n4 = cv.inverse_norm(4.0);
        let n8 = cv.inverse_norm(8.0);
        prop_assert!(n2 >= n4 - 1e-9);
        prop_assert!(n4 >= n8 - 1e-9);
    }

    #[test]
    fn lemma_4_1_random_points(
        x in proptest::collection::vec(0.0f64..0.2, 1..10),
        a in 1.01f64..3.0,
    ) {
        // Keep a*x_i < 1 so g stays positive.
        if x.iter().all(|&v| a * v < 0.95) {
            let (gx, gy) = lemma_4_1_check(&x, a);
            prop_assert!(gx <= gy + 1e-9, "lemma 4.1 violated: {gx} > {gy}");
        }
    }

    #[test]
    fn identity_filter_preserves_distance(
        weights in proptest::collection::vec(0.05f64..1.0, 2..40),
        slots in 8usize..64,
    ) {
        let eta = DiscreteDistribution::from_weights(weights.clone()).unwrap();
        let filter = IdentityFilter::new(&eta, slots).unwrap();
        // Pushforward of η is within rounding error of uniform.
        let push = filter.pushforward(&eta);
        prop_assert!(
            l1_to_uniform(&push) <= filter.rounding_l1_error() + 1e-9
        );
        // Slot counts partition the output domain.
        let total: usize = (0..eta.domain_size()).map(|x| filter.slot_count(x)).sum();
        prop_assert_eq!(total, filter.output_domain_size());
    }
}
