//! The τ-token-packaging problem (Definition 2, Theorem 5.1).
//!
//! Every node starts with one or more tokens (its samples). The network
//! must output multisets ("packages") of exactly τ tokens, with every
//! token in at most one package and at most τ−1 tokens left unpackaged.
//!
//! The paper's algorithm: build a BFS tree from the max-id leader;
//! compute, bottom-up, the residue `c(v) = (tokens(v) + Σ c(child)) mod τ`
//! each node must forward; then pipeline tokens up the tree — each node
//! forwards the first `c(v)` tokens it handles and keeps the rest, so
//! after `O(D + τ)` rounds every node holds a multiple of τ tokens. The
//! root discards its own residue `c(root) < τ`.

use dut_netsim::algorithms::bfs::{build_bfs_tree, BfsTree};
use dut_netsim::algorithms::leader::elect_leader;
use dut_netsim::engine::{BandwidthModel, Compact, EngineError, Network, NodeProtocol, Outbox};
use dut_netsim::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Bottom-up residue computation: like a convergecast, but each node
/// retains `c(v) = (own_tokens + Σ c(child)) mod τ` and forwards `c(v)`.
#[derive(Debug, Clone)]
struct ResidueNode {
    parent: Option<NodeId>,
    expected_children: usize,
    received: usize,
    own_tokens: u64,
    tau: u64,
    c: Option<u64>,
    acc: u64,
}

impl NodeProtocol for ResidueNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        for &(_, Compact(v)) in inbox {
            self.acc += v;
            self.received += 1;
        }
        if self.c.is_none() && self.received == self.expected_children {
            let c = (self.own_tokens + self.acc) % self.tau;
            self.c = Some(c);
            if let Some(p) = self.parent {
                out.send(p, Compact(c));
            }
        }
    }

    fn is_done(&self) -> bool {
        self.c.is_some()
    }
}

/// The pipelined token-forwarding phase: each node forwards one token per
/// round toward its parent until it has forwarded `c(v)` tokens, keeping
/// everything else. The root "forwards" by discarding.
#[derive(Debug, Clone)]
struct ForwardNode {
    parent: Option<NodeId>,
    /// Tokens to forward up (the residue `c(v)`).
    quota: u64,
    sent: u64,
    buffer: VecDeque<u64>,
    /// Tokens this node keeps (its packages are cut from these).
    kept: Vec<u64>,
    /// Tokens the root discarded (root only; for accounting).
    discarded: u64,
    /// Whether the quota has been fully sent *and* the keep-decision for
    /// buffered tokens has been flushed.
    flushed: bool,
}

impl NodeProtocol for ForwardNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        for &(_, Compact(t)) in inbox {
            self.buffer.push_back(t);
        }
        if self.sent < self.quota {
            if let Some(t) = self.buffer.pop_front() {
                match self.parent {
                    Some(p) => out.send(p, Compact(t)),
                    None => self.discarded += 1,
                }
                self.sent += 1;
            }
        }
        if self.sent == self.quota {
            // Quota met: everything still buffered is kept.
            self.kept
                .append(&mut Vec::from(std::mem::take(&mut self.buffer)));
            self.flushed = true;
        }
    }

    fn is_done(&self) -> bool {
        self.flushed
    }
}

/// The output of token packaging.
#[derive(Debug, Clone)]
pub struct PackagingResult {
    /// The packages: `(owner node, tokens)`, each of size exactly τ.
    pub packages: Vec<(NodeId, Vec<u64>)>,
    /// Tokens discarded at the root (≤ τ−1 by Theorem 5.1).
    pub discarded: usize,
    /// Total rounds used across all phases (leader election, BFS,
    /// residue computation, forwarding).
    pub rounds: usize,
    /// Total bits sent across all phases.
    pub bits: usize,
    /// The BFS tree used (for reuse by the tester's aggregation phase).
    pub tree: BfsTree,
    /// The elected leader (BFS root).
    pub leader: NodeId,
}

/// Solves τ-token packaging on `g`, where node `v` starts with
/// `tokens[v]` tokens (sample values in `[0, n)`).
///
/// `ids[v]` are the node identifiers used for leader election (random
/// from a large namespace in an anonymous network; must have a unique
/// maximum).
///
/// # Errors
///
/// Propagates engine errors (disconnected graph, CONGEST violations).
///
/// # Panics
///
/// Panics if `tau == 0` or input lengths mismatch.
pub fn solve_token_packaging(
    g: &Graph,
    tokens: &[Vec<u64>],
    ids: &[u64],
    tau: usize,
    model: BandwidthModel,
) -> Result<PackagingResult, EngineError> {
    assert!(tau >= 1, "package size must be at least 1");
    assert_eq!(tokens.len(), g.node_count(), "one token list per node");
    assert_eq!(ids.len(), g.node_count(), "one id per node");
    let k = g.node_count();

    // Phase 1: leader election (max id).
    let (leader, rounds_leader) = elect_leader(g, ids, model)?;
    // Phase 2: BFS tree from the leader.
    let (tree, rounds_bfs) = build_bfs_tree(g, leader, model)?;

    // Phase 3: residue computation up the tree.
    let residue_states: Vec<ResidueNode> = (0..k)
        .map(|v| ResidueNode {
            parent: tree.parent[v],
            expected_children: tree.children[v].len(),
            received: 0,
            own_tokens: tokens[v].len() as u64,
            tau: tau as u64,
            c: None,
            acc: 0,
        })
        .collect();
    let mut net = Network::new(g, model);
    let residue_report = net.run(residue_states, 2 * k + 4)?;
    let quotas: Vec<u64> = residue_report
        .nodes
        .iter()
        .map(|n| n.c.expect("residue computed at every node"))
        .collect();

    // Phase 4: pipelined forwarding for ~τ + height rounds.
    let forward_states: Vec<ForwardNode> = (0..k)
        .map(|v| ForwardNode {
            parent: tree.parent[v],
            quota: quotas[v],
            sent: 0,
            buffer: tokens[v].iter().copied().collect(),
            kept: Vec::new(),
            discarded: 0,
            flushed: false,
        })
        .collect();
    let mut net = Network::new(g, model);
    let max_rounds = 2 * (tau + tree.height + 4) + 8;
    let forward_report = net.run(forward_states, max_rounds)?;

    // Cut each node's kept tokens into packages of exactly τ.
    let mut packages = Vec::new();
    let mut discarded = 0usize;
    for (v, node) in forward_report.nodes.iter().enumerate() {
        discarded += node.discarded as usize;
        debug_assert_eq!(
            node.kept.len() % tau,
            0,
            "node {v} kept {} tokens, not a multiple of tau={tau}",
            node.kept.len()
        );
        for chunk in node.kept.chunks_exact(tau) {
            packages.push((v, chunk.to_vec()));
        }
    }

    Ok(PackagingResult {
        packages,
        discarded,
        rounds: rounds_leader + rounds_bfs + residue_report.rounds + forward_report.rounds,
        bits: residue_report.total_bits + forward_report.total_bits,
        tree,
        leader,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_netsim::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn run_packaging(g: &Graph, tau: usize, tokens_per_node: usize, seed: u64) -> PackagingResult {
        let k = g.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        // Unique token values so we can check the "at most one package"
        // requirement exactly.
        let mut next = 0u64;
        let tokens: Vec<Vec<u64>> = (0..k)
            .map(|_| {
                (0..tokens_per_node)
                    .map(|_| {
                        next += 1;
                        next
                    })
                    .collect()
            })
            .collect();
        let ids: Vec<u64> = {
            let mut ids: Vec<u64> = (0..k as u64).collect();
            // shuffle so the leader is not always node k-1
            for i in (1..k).rev() {
                let j = rng.gen_range(0..=i);
                ids.swap(i, j);
            }
            ids
        };
        solve_token_packaging(g, &tokens, &ids, tau, BandwidthModel::Local).unwrap()
    }

    fn check_definition_2(result: &PackagingResult, total_tokens: usize, tau: usize) {
        // (1) every package has size exactly tau
        for (_, p) in &result.packages {
            assert_eq!(p.len(), tau);
        }
        // (2) each token in at most one package
        let mut seen = HashMap::new();
        for (_, p) in &result.packages {
            for &t in p {
                *seen.entry(t).or_insert(0) += 1;
            }
        }
        assert!(seen.values().all(|&c| c == 1), "token duplicated");
        // (3) all but at most tau-1 tokens packaged
        let packaged = result.packages.len() * tau;
        assert!(
            total_tokens - packaged < tau,
            "{} of {} tokens unpackaged (tau = {tau})",
            total_tokens - packaged,
            total_tokens
        );
        assert_eq!(total_tokens - packaged, result.discarded);
    }

    #[test]
    fn packaging_on_line() {
        let g = topology::line(20);
        let r = run_packaging(&g, 4, 1, 1);
        check_definition_2(&r, 20, 4);
        assert_eq!(r.packages.len(), 5);
    }

    #[test]
    fn packaging_on_star() {
        let g = topology::star(33);
        let r = run_packaging(&g, 8, 1, 2);
        check_definition_2(&r, 33, 8);
        assert_eq!(r.packages.len(), 4);
    }

    #[test]
    fn packaging_all_topologies_and_taus() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in topology::Topology::ALL {
            let g = t.instantiate(40, &mut rng);
            let k = g.node_count();
            for tau in [1usize, 2, 3, 7, 13] {
                let r = run_packaging(&g, tau, 1, 17);
                check_definition_2(&r, k, tau);
            }
        }
    }

    #[test]
    fn packaging_with_multiple_tokens_per_node() {
        let g = topology::grid(5, 5);
        let r = run_packaging(&g, 6, 3, 4);
        check_definition_2(&r, 75, 6);
    }

    #[test]
    fn packaging_tau_one_packages_everything() {
        let g = topology::ring(11);
        let r = run_packaging(&g, 1, 1, 5);
        check_definition_2(&r, 11, 1);
        assert_eq!(r.packages.len(), 11);
        assert_eq!(r.discarded, 0);
    }

    #[test]
    fn packaging_tau_larger_than_network() {
        // With tau > total tokens, nothing can be packaged; everything
        // funnels to the root and is discarded (c(root) = k mod tau = k).
        let g = topology::line(5);
        let r = run_packaging(&g, 9, 1, 6);
        assert_eq!(r.packages.len(), 0);
        assert_eq!(r.discarded, 5);
    }

    #[test]
    fn packaging_rounds_scale_with_d_plus_tau() {
        // Theorem 5.1: O(D + tau) rounds. Measure both regimes.
        let g_line = topology::line(60); // D = 59, tau small
        let r1 = run_packaging(&g_line, 3, 1, 7);
        assert!(
            r1.rounds <= 6 * (59 + 3) + 20,
            "line rounds {} too large",
            r1.rounds
        );
        let g_star = topology::star(60); // D = 2, tau large
        let r2 = run_packaging(&g_star, 30, 1, 8);
        assert!(
            r2.rounds <= 6 * (2 + 30) + 20,
            "star rounds {} too large",
            r2.rounds
        );
    }

    #[test]
    fn packaging_fits_congest_budget() {
        let g = topology::grid(6, 6);
        let k = g.node_count();
        let tokens: Vec<Vec<u64>> = (0..k as u64).map(|v| vec![v]).collect();
        let ids: Vec<u64> = (0..k as u64).collect();
        // Tokens are sample values < 2^20; ids < k. Budget for a 2^20
        // domain comfortably holds one token per round.
        let model = BandwidthModel::Congest { bits_per_edge: 64 };
        let r = solve_token_packaging(&g, &tokens, &ids, 5, model).unwrap();
        for (_, p) in &r.packages {
            assert_eq!(p.len(), 5);
        }
    }

    #[test]
    fn leader_is_max_id() {
        let g = topology::line(9);
        let tokens: Vec<Vec<u64>> = (0..9).map(|v| vec![v as u64]).collect();
        let mut ids: Vec<u64> = (0..9).collect();
        ids[4] = 1000;
        let r = solve_token_packaging(&g, &tokens, &ids, 3, BandwidthModel::Local).unwrap();
        assert_eq!(r.leader, 4);
        assert_eq!(r.tree.root, 4);
    }
}
