//! The τ-token-packaging problem (Definition 2, Theorem 5.1).
//!
//! Every node starts with one or more tokens (its samples). The network
//! must output multisets ("packages") of exactly τ tokens, with every
//! token in at most one package and at most τ−1 tokens left unpackaged.
//!
//! The paper's algorithm: build a BFS tree from the max-id leader;
//! compute, bottom-up, the residue `c(v) = (tokens(v) + Σ c(child)) mod τ`
//! each node must forward; then pipeline tokens up the tree — each node
//! forwards the first `c(v)` tokens it handles and keeps the rest, so
//! after `O(D + τ)` rounds every node holds a multiple of τ tokens. The
//! root discards its own residue `c(root) < τ`.

use dut_netsim::algorithms::bfs::{build_bfs_tree, BfsTree};
use dut_netsim::algorithms::leader::elect_leader;
use dut_netsim::engine::{BandwidthModel, Compact, EngineError, Network, NodeProtocol, Outbox};
use dut_netsim::graph::{ImplicitTopology, NodeId};
use std::collections::VecDeque;

/// Bottom-up residue computation: like a convergecast, but each node
/// retains `c(v) = (own_tokens + Σ c(child)) mod τ` and forwards `c(v)`.
#[derive(Debug, Clone)]
struct ResidueNode {
    parent: Option<NodeId>,
    expected_children: usize,
    received: usize,
    own_tokens: u64,
    tau: u64,
    c: Option<u64>,
    acc: u64,
}

impl NodeProtocol for ResidueNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        for &(_, Compact(v)) in inbox {
            self.acc += v;
            self.received += 1;
        }
        if self.c.is_none() && self.received == self.expected_children {
            let c = (self.own_tokens + self.acc) % self.tau;
            self.c = Some(c);
            if let Some(p) = self.parent {
                out.send(p, Compact(c));
            }
        }
    }

    fn is_done(&self) -> bool {
        self.c.is_some()
    }
}

/// The pipelined token-forwarding phase: each node forwards one token per
/// round toward its parent until it has forwarded `c(v)` tokens, keeping
/// everything else. The root "forwards" by discarding.
///
/// `pub(crate)` so the robust pipeline can re-run this phase through an
/// error-correcting codec.
#[derive(Debug, Clone)]
pub(crate) struct ForwardNode {
    parent: Option<NodeId>,
    /// Tokens to forward up (the residue `c(v)`).
    quota: u64,
    sent: u64,
    buffer: VecDeque<u64>,
    /// Tokens this node keeps (its packages are cut from these).
    kept: Vec<u64>,
    /// Tokens the root discarded (root only; for accounting).
    discarded: u64,
    /// Whether the quota has been fully sent *and* the keep-decision for
    /// buffered tokens has been flushed.
    flushed: bool,
}

impl NodeProtocol for ForwardNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        for &(_, Compact(t)) in inbox {
            self.buffer.push_back(t);
        }
        if self.sent < self.quota {
            if let Some(t) = self.buffer.pop_front() {
                match self.parent {
                    Some(p) => out.send(p, Compact(t)),
                    None => self.discarded += 1,
                }
                self.sent += 1;
            }
        }
        if self.sent == self.quota {
            // Quota met: everything still buffered is kept.
            self.kept
                .append(&mut Vec::from(std::mem::take(&mut self.buffer)));
            self.flushed = true;
        }
    }

    fn is_done(&self) -> bool {
        self.flushed
    }
}

/// Round budget for the forwarding phase: `O(τ + height)` with slack.
pub(crate) fn forward_round_limit(tau: usize, tree: &BfsTree) -> usize {
    2 * (tau + tree.height + 4) + 8
}

/// Initial forwarding states for quota vector `quotas` (shared between
/// the plain and the coded/robust pipelines).
pub(crate) fn forward_states(
    tree: &BfsTree,
    tokens: &[Vec<u64>],
    quotas: &[u64],
) -> Vec<ForwardNode> {
    (0..tokens.len())
        .map(|v| ForwardNode {
            parent: tree.parent[v],
            quota: quotas[v],
            sent: 0,
            buffer: tokens[v].iter().copied().collect(),
            kept: Vec::new(),
            discarded: 0,
            flushed: false,
        })
        .collect()
}

/// Token-conservation check for the fault-injected forwarding phase:
/// every token must end up either kept at some node or discarded at the
/// root. A dropped forwarding message loses its token in flight — the
/// starved node can still flush (its own quota is met) and the network
/// quiesces with a partial group somewhere, so the robust pipeline must
/// count losses *before* cutting packages. A fault-free run never loses
/// tokens. Returns the number of tokens lost; `total` is the token
/// count the network started with.
pub(crate) fn tokens_lost<'a>(nodes: impl Iterator<Item = &'a ForwardNode>, total: usize) -> usize {
    let accounted: usize = nodes.map(|n| n.kept.len() + n.discarded as usize).sum();
    total - accounted
}

/// Cuts each node's kept tokens into packages of exactly `tau` and sums
/// the root's discards (shared between the plain and robust pipelines).
pub(crate) fn cut_packages<'a>(
    nodes: impl Iterator<Item = &'a ForwardNode>,
    tau: usize,
) -> (Vec<(NodeId, Vec<u64>)>, usize) {
    let mut packages = Vec::new();
    let mut discarded = 0usize;
    for (v, node) in nodes.enumerate() {
        discarded += node.discarded as usize;
        debug_assert_eq!(
            node.kept.len() % tau,
            0,
            "node {v} kept {} tokens, not a multiple of tau={tau}",
            node.kept.len()
        );
        for chunk in node.kept.chunks_exact(tau) {
            packages.push((v, chunk.to_vec()));
        }
    }
    (packages, discarded)
}

/// Why a token-packaging run could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackagingError {
    /// `tau == 0`: packages of size zero are not meaningful (Definition 2
    /// requires multisets of exactly τ ≥ 1 tokens).
    ZeroTau,
    /// `tokens` or `ids` does not provide exactly one entry per node.
    LengthMismatch {
        /// Nodes in the graph.
        nodes: usize,
        /// Entries in `tokens`.
        tokens: usize,
        /// Entries in `ids`.
        ids: usize,
    },
    /// The underlying protocol run failed (empty or disconnected graph,
    /// CONGEST budget violation, round-limit exhaustion).
    Engine(EngineError),
    /// Faults exceeded what the robust pipeline can absorb: either the
    /// reliable residue phase gave up on `failures` subtree reports
    /// despite retries (quotas would be inconsistent), or the
    /// forwarding phase lost `failures` tokens in flight (packages
    /// would come out short). The context fields locate the frontier:
    /// which stage broke, how deep into the pipeline, and how much of
    /// the stage's conserved quantity survived.
    FaultOverwhelmed {
        /// Deliveries lost for good: subtree reports the retry budget
        /// could not recover, or tokens dropped during forwarding.
        failures: u64,
        /// The pipeline stage whose conservation check failed.
        stage: RobustStage,
        /// Cumulative pipeline round (across all phases) at which the
        /// failing stage finished.
        round: usize,
        /// Units the stage had to deliver: subtree reports
        /// ([`RobustStage::Residue`]) or tokens
        /// ([`RobustStage::Forwarding`]).
        expected: u64,
        /// Units that actually survived the stage.
        observed: u64,
    },
}

/// The robust-pipeline stage a [`PackagingError::FaultOverwhelmed`]
/// report points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RobustStage {
    /// The reliable (ack/retry) residue convergecast: the retry budget
    /// gave up on one or more subtree token-count reports.
    Residue,
    /// Pipelined token forwarding: tokens were dropped in flight and
    /// the conservation check caught the shortfall.
    Forwarding,
}

impl std::fmt::Display for RobustStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RobustStage::Residue => write!(f, "residue"),
            RobustStage::Forwarding => write!(f, "forwarding"),
        }
    }
}

impl std::fmt::Display for PackagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackagingError::ZeroTau => write!(f, "package size tau must be at least 1"),
            PackagingError::LengthMismatch { nodes, tokens, ids } => write!(
                f,
                "input lengths mismatch: {nodes} nodes but {tokens} token lists and {ids} ids"
            ),
            PackagingError::Engine(e) => write!(f, "packaging protocol failed: {e}"),
            PackagingError::FaultOverwhelmed {
                failures,
                stage,
                round,
                expected,
                observed,
            } => write!(
                f,
                "faults overwhelmed the robust pipeline at the {stage} stage \
                 (pipeline round {round}): {failures} deliveries lost for good, \
                 {observed}/{expected} units survived"
            ),
        }
    }
}

impl std::error::Error for PackagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PackagingError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for PackagingError {
    fn from(e: EngineError) -> Self {
        PackagingError::Engine(e)
    }
}

/// The output of token packaging.
#[derive(Debug, Clone)]
pub struct PackagingResult {
    /// The packages: `(owner node, tokens)`, each of size exactly τ.
    pub packages: Vec<(NodeId, Vec<u64>)>,
    /// Tokens discarded at the root (≤ τ−1 by Theorem 5.1).
    pub discarded: usize,
    /// Total rounds used across all phases (leader election, BFS,
    /// residue computation, forwarding).
    pub rounds: usize,
    /// Total bits sent across all phases.
    pub bits: usize,
    /// The BFS tree used (for reuse by the tester's aggregation phase).
    pub tree: BfsTree,
    /// The elected leader (BFS root).
    pub leader: NodeId,
}

/// Solves τ-token packaging on `g`, where node `v` starts with
/// `tokens[v]` tokens (sample values in `[0, n)`).
///
/// `ids[v]` are the node identifiers used for leader election (random
/// from a large namespace in an anonymous network; must have a unique
/// maximum).
///
/// # Errors
///
/// Returns [`PackagingError::ZeroTau`] if `tau == 0`,
/// [`PackagingError::LengthMismatch`] if `tokens` or `ids` does not
/// match the node count, and [`PackagingError::Engine`] for protocol
/// failures (empty or disconnected graph, CONGEST violations).
pub fn solve_token_packaging<T: ImplicitTopology>(
    g: &T,
    tokens: &[Vec<u64>],
    ids: &[u64],
    tau: usize,
    model: BandwidthModel,
) -> Result<PackagingResult, PackagingError> {
    if tau == 0 {
        return Err(PackagingError::ZeroTau);
    }
    let k = g.node_count();
    if tokens.len() != k || ids.len() != k {
        return Err(PackagingError::LengthMismatch {
            nodes: k,
            tokens: tokens.len(),
            ids: ids.len(),
        });
    }

    // Phase 1: leader election (max id).
    let (leader, rounds_leader) = elect_leader(g, ids, model)?;
    // Phase 2: BFS tree from the leader.
    let (tree, rounds_bfs) = build_bfs_tree(g, leader, model)?;

    // Phase 3: residue computation up the tree.
    let residue_states: Vec<ResidueNode> = (0..k)
        .map(|v| ResidueNode {
            parent: tree.parent[v],
            expected_children: tree.children[v].len(),
            received: 0,
            own_tokens: tokens[v].len() as u64,
            tau: tau as u64,
            c: None,
            acc: 0,
        })
        .collect();
    let mut net = Network::new(g, model);
    let residue_report = net.run(residue_states, 2 * k + 4)?;
    // Unreachable expect: `ResidueNode::is_done` is `c.is_some()`, and the
    // engine only returns a successful report once every node is done.
    let quotas: Vec<u64> = residue_report
        .nodes
        .iter()
        .map(|n| n.c.expect("residue computed at every node"))
        .collect();

    // Phase 4: pipelined forwarding for ~τ + height rounds.
    let states = forward_states(&tree, tokens, &quotas);
    let mut net = Network::new(g, model);
    let max_rounds = forward_round_limit(tau, &tree);
    let forward_report = net.run(states, max_rounds)?;

    // Cut each node's kept tokens into packages of exactly τ.
    let (packages, discarded) = cut_packages(forward_report.nodes.iter(), tau);

    Ok(PackagingResult {
        packages,
        discarded,
        rounds: rounds_leader + rounds_bfs + residue_report.rounds + forward_report.rounds,
        bits: residue_report.total_bits + forward_report.total_bits,
        tree,
        leader,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_netsim::graph::Graph;
    use dut_netsim::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn run_packaging(g: &Graph, tau: usize, tokens_per_node: usize, seed: u64) -> PackagingResult {
        let k = g.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        // Unique token values so we can check the "at most one package"
        // requirement exactly.
        let mut next = 0u64;
        let tokens: Vec<Vec<u64>> = (0..k)
            .map(|_| {
                (0..tokens_per_node)
                    .map(|_| {
                        next += 1;
                        next
                    })
                    .collect()
            })
            .collect();
        let ids: Vec<u64> = {
            let mut ids: Vec<u64> = (0..k as u64).collect();
            // shuffle so the leader is not always node k-1
            for i in (1..k).rev() {
                let j = rng.gen_range(0..=i);
                ids.swap(i, j);
            }
            ids
        };
        solve_token_packaging(g, &tokens, &ids, tau, BandwidthModel::Local).unwrap()
    }

    fn check_definition_2(result: &PackagingResult, total_tokens: usize, tau: usize) {
        // (1) every package has size exactly tau
        for (_, p) in &result.packages {
            assert_eq!(p.len(), tau);
        }
        // (2) each token in at most one package
        let mut seen = HashMap::new();
        for (_, p) in &result.packages {
            for &t in p {
                *seen.entry(t).or_insert(0) += 1;
            }
        }
        assert!(seen.values().all(|&c| c == 1), "token duplicated");
        // (3) all but at most tau-1 tokens packaged
        let packaged = result.packages.len() * tau;
        assert!(
            total_tokens - packaged < tau,
            "{} of {} tokens unpackaged (tau = {tau})",
            total_tokens - packaged,
            total_tokens
        );
        assert_eq!(total_tokens - packaged, result.discarded);
    }

    #[test]
    fn packaging_on_line() {
        let g = topology::line(20);
        let r = run_packaging(&g, 4, 1, 1);
        check_definition_2(&r, 20, 4);
        assert_eq!(r.packages.len(), 5);
    }

    #[test]
    fn packaging_on_star() {
        let g = topology::star(33);
        let r = run_packaging(&g, 8, 1, 2);
        check_definition_2(&r, 33, 8);
        assert_eq!(r.packages.len(), 4);
    }

    #[test]
    fn packaging_all_topologies_and_taus() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in topology::Topology::ALL {
            let g = t.instantiate(40, &mut rng);
            let k = g.node_count();
            for tau in [1usize, 2, 3, 7, 13] {
                let r = run_packaging(&g, tau, 1, 17);
                check_definition_2(&r, k, tau);
            }
        }
    }

    #[test]
    fn packaging_with_multiple_tokens_per_node() {
        let g = topology::grid(5, 5);
        let r = run_packaging(&g, 6, 3, 4);
        check_definition_2(&r, 75, 6);
    }

    #[test]
    fn packaging_tau_one_packages_everything() {
        let g = topology::ring(11);
        let r = run_packaging(&g, 1, 1, 5);
        check_definition_2(&r, 11, 1);
        assert_eq!(r.packages.len(), 11);
        assert_eq!(r.discarded, 0);
    }

    #[test]
    fn packaging_tau_larger_than_network() {
        // With tau > total tokens, nothing can be packaged; everything
        // funnels to the root and is discarded (c(root) = k mod tau = k).
        let g = topology::line(5);
        let r = run_packaging(&g, 9, 1, 6);
        assert_eq!(r.packages.len(), 0);
        assert_eq!(r.discarded, 5);
    }

    #[test]
    fn packaging_rounds_scale_with_d_plus_tau() {
        // Theorem 5.1: O(D + tau) rounds. Measure both regimes.
        let g_line = topology::line(60); // D = 59, tau small
        let r1 = run_packaging(&g_line, 3, 1, 7);
        assert!(
            r1.rounds <= 6 * (59 + 3) + 20,
            "line rounds {} too large",
            r1.rounds
        );
        let g_star = topology::star(60); // D = 2, tau large
        let r2 = run_packaging(&g_star, 30, 1, 8);
        assert!(
            r2.rounds <= 6 * (2 + 30) + 20,
            "star rounds {} too large",
            r2.rounds
        );
    }

    #[test]
    fn packaging_fits_congest_budget() {
        let g = topology::grid(6, 6);
        let k = g.node_count();
        let tokens: Vec<Vec<u64>> = (0..k as u64).map(|v| vec![v]).collect();
        let ids: Vec<u64> = (0..k as u64).collect();
        // Tokens are sample values < 2^20; ids < k. Budget for a 2^20
        // domain comfortably holds one token per round.
        let model = BandwidthModel::Congest { bits_per_edge: 64 };
        let r = solve_token_packaging(&g, &tokens, &ids, 5, model).unwrap();
        for (_, p) in &r.packages {
            assert_eq!(p.len(), 5);
        }
    }

    #[test]
    fn packaging_tau_zero_is_a_typed_error() {
        let g = topology::line(4);
        let tokens: Vec<Vec<u64>> = (0..4).map(|v| vec![v as u64]).collect();
        let ids: Vec<u64> = (0..4).collect();
        let err = solve_token_packaging(&g, &tokens, &ids, 0, BandwidthModel::Local).unwrap_err();
        assert_eq!(err, PackagingError::ZeroTau);
    }

    #[test]
    fn packaging_length_mismatch_is_a_typed_error() {
        let g = topology::line(4);
        let tokens: Vec<Vec<u64>> = (0..3).map(|v| vec![v as u64]).collect();
        let ids: Vec<u64> = (0..4).collect();
        let err = solve_token_packaging(&g, &tokens, &ids, 2, BandwidthModel::Local).unwrap_err();
        assert_eq!(
            err,
            PackagingError::LengthMismatch {
                nodes: 4,
                tokens: 3,
                ids: 4,
            }
        );
    }

    #[test]
    fn packaging_on_disconnected_graph_is_a_typed_error() {
        // Two components: the leader's BFS flood stabilizes without
        // reaching the far side, so packaging reports the unreached node
        // instead of timing out or panicking.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let tokens: Vec<Vec<u64>> = (0..6).map(|v| vec![v as u64]).collect();
        let ids: Vec<u64> = vec![9, 1, 2, 3, 4, 5]; // leader in component {0,1,2}
        let err = solve_token_packaging(&g, &tokens, &ids, 2, BandwidthModel::Local).unwrap_err();
        assert_eq!(
            err,
            PackagingError::Engine(EngineError::Unreached { node: 3 })
        );
    }

    #[test]
    fn packaging_on_empty_graph_is_a_typed_error() {
        let g = Graph::from_edges(0, &[]);
        let err = solve_token_packaging(&g, &[], &[], 2, BandwidthModel::Local).unwrap_err();
        assert_eq!(err, PackagingError::Engine(EngineError::EmptyNetwork));
    }

    #[test]
    fn packaging_on_single_node_graph_works() {
        // K_1: the node is its own leader and root; its c = tokens mod τ
        // is discarded and the rest packaged locally.
        let g = Graph::from_edges(1, &[]);
        let tokens = vec![vec![10u64, 11, 12, 13, 14]];
        let ids = vec![7u64];
        let r = solve_token_packaging(&g, &tokens, &ids, 2, BandwidthModel::Local).unwrap();
        check_definition_2(&r, 5, 2);
        assert_eq!(r.packages.len(), 2);
        assert_eq!(r.discarded, 1);
        assert_eq!(r.leader, 0);
    }

    #[test]
    fn leader_is_max_id() {
        let g = topology::line(9);
        let tokens: Vec<Vec<u64>> = (0..9).map(|v| vec![v as u64]).collect();
        let mut ids: Vec<u64> = (0..9).collect();
        ids[4] = 1000;
        let r = solve_token_packaging(&g, &tokens, &ids, 3, BandwidthModel::Local).unwrap();
        assert_eq!(r.leader, 4);
        assert_eq!(r.tree.root, 4);
    }
}
