//! The Justesen message codec: error-corrected wire words for CONGEST
//! protocols.
//!
//! [`JustesenCodec`] bridges `dut-ecc`'s concatenated [`JustesenCode`]
//! into the simulator's [`MessageCodec`] plumbing: a plain protocol
//! message is packed into its [`CodecMessage`] bit representation,
//! encoded into a [`CodedWord`] that travels (and is metered, and is
//! fault-injected) on the wire, and decoded on arrival — any pattern of
//! at most [`JustesenCode::certified_correction_radius`] bit flips per
//! word is corrected transparently; worse corruption is discarded like a
//! dropped message, which the ack/retry layer in
//! `dut_netsim::algorithms::reliable` then recovers.

use dut_ecc::{BinaryCode, JustesenCode};
use dut_netsim::algorithms::coded::{CodecError, CodecMessage, MessageCodec};
use dut_netsim::engine::MessageSize;
use dut_netsim::fault::FaultInjectable;
use std::marker::PhantomData;

/// A Justesen codeword on the wire.
///
/// [`MessageSize`] reports the full codeword length, so a CONGEST
/// bandwidth budget must be sized to [`BinaryCode::output_bits`] of the
/// code (see [`JustesenCodec::output_bits`]), and fault injection flips
/// real codeword bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedWord {
    /// Codeword length in bits.
    bits: usize,
    /// The codeword, packed little-endian into 64-bit words.
    words: Vec<u64>,
}

impl MessageSize for CodedWord {
    fn size_bits(&self) -> usize {
        self.bits
    }
}

impl FaultInjectable for CodedWord {
    fn flip_bit(&mut self, bit: usize) {
        let bit = bit % self.bits;
        self.words[bit / 64] ^= 1u64 << (bit % 64);
    }
}

/// A [`MessageCodec`] that sends `M` as Justesen codewords.
///
/// The code is sized at construction to the message type's
/// [`CodecMessage::PACKED_BITS`]: the smallest rate-1/3 instance whose
/// input capacity holds the packed message.
#[derive(Debug, Clone)]
pub struct JustesenCodec<M> {
    code: JustesenCode,
    _marker: PhantomData<M>,
}

impl<M: CodecMessage> JustesenCodec<M> {
    /// Creates the codec with the smallest rate-1/3 Justesen instance
    /// holding `M::PACKED_BITS` message bits.
    ///
    /// # Panics
    ///
    /// Panics if no supported instance (`m ≤ 16`) can hold the message —
    /// unreachable for the crate's message types, which pack into at
    /// most 128 bits.
    pub fn new() -> Self {
        let code = (2..=16u32)
            .map(JustesenCode::rate_one_third)
            .find(|c| c.input_bits() >= M::PACKED_BITS)
            .expect("some rate-1/3 instance holds a 128-bit message");
        JustesenCodec {
            code,
            _marker: PhantomData,
        }
    }

    /// The codeword length in wire bits — size CONGEST budgets to this.
    pub fn output_bits(&self) -> usize {
        self.code.output_bits()
    }

    /// Bit flips per word the codec is certified to correct.
    pub fn correction_radius(&self) -> usize {
        self.code.certified_correction_radius()
    }
}

impl<M: CodecMessage> Default for JustesenCodec<M> {
    fn default() -> Self {
        JustesenCodec::new()
    }
}

impl<M: CodecMessage + MessageSize> MessageCodec for JustesenCodec<M> {
    type Plain = M;
    type Wire = CodedWord;

    fn encode(&self, msg: &M) -> CodedWord {
        let bits = msg.to_bits();
        let packed = [bits as u64, (bits >> 64) as u64];
        let needed = self.code.input_bits().div_ceil(64);
        // PACKED_BITS ≤ input_bits by construction, and `to_bits`
        // zeroes everything above PACKED_BITS, so padding words with
        // zeros keeps the message exact.
        let mut message = vec![0u64; needed];
        message[..needed.min(2)].copy_from_slice(&packed[..needed.min(2)]);
        CodedWord {
            bits: self.code.output_bits(),
            words: self.code.encode(&message),
        }
    }

    fn decode(&self, wire: &CodedWord) -> Result<(M, usize), CodecError> {
        let message = self.code.decode(&wire.words).map_err(|_| CodecError)?;
        // Corrected bits = Hamming distance to the re-encoded clean
        // codeword (the decoder itself reports only symbol errors).
        let clean = self.code.encode(&message);
        let corrected: u32 = clean
            .iter()
            .zip(&wire.words)
            .map(|(&a, &b)| (a ^ b).count_ones())
            .sum();
        let mut bits = u128::from(message[0]);
        if let Some(&hi) = message.get(1) {
            bits |= u128::from(hi) << 64;
        }
        Ok((M::from_bits(bits), corrected as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_netsim::algorithms::RelMsg;
    use dut_netsim::engine::Compact;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn compact_round_trips_clean() {
        let codec = JustesenCodec::<Compact>::new();
        for v in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let wire = codec.encode(&Compact(v));
            assert_eq!(wire.size_bits(), codec.output_bits());
            let (decoded, corrected) = codec.decode(&wire).unwrap();
            assert_eq!(decoded, Compact(v));
            assert_eq!(corrected, 0);
        }
    }

    #[test]
    fn relmsg_round_trips_clean() {
        let codec = JustesenCodec::<RelMsg>::new();
        for msg in [
            RelMsg::Data { seq: 7, value: 123 },
            RelMsg::Data {
                seq: u32::MAX,
                value: u64::MAX,
            },
            RelMsg::Ack { seq: 0 },
            RelMsg::Ack { seq: 99 },
        ] {
            let (decoded, corrected) = codec.decode(&codec.encode(&msg)).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(corrected, 0);
        }
    }

    #[test]
    fn corrects_flips_up_to_radius() {
        let codec = JustesenCodec::<Compact>::new();
        let radius = codec.correction_radius();
        assert!(radius >= 1);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..25 {
            let msg = Compact(rng.gen());
            let mut wire = codec.encode(&msg);
            let t = rng.gen_range(1..=radius);
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < t {
                flipped.insert(rng.gen_range(0..codec.output_bits()));
            }
            for &bit in &flipped {
                wire.flip_bit(bit);
            }
            let (decoded, corrected) = codec.decode(&wire).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(corrected, t);
        }
    }

    #[test]
    fn overwhelming_corruption_is_a_codec_error_or_wrong_word() {
        // Beyond the radius the decoder must never silently return the
        // original message as a "clean" decode.
        let codec = JustesenCodec::<Compact>::new();
        let msg = Compact(0x1234_5678_9ABC_DEF0);
        let mut wire = codec.encode(&msg);
        for bit in (0..codec.output_bits()).step_by(2) {
            wire.flip_bit(bit);
        }
        match codec.decode(&wire) {
            Err(CodecError) => {}
            Ok((decoded, _)) => assert_ne!(decoded, msg),
        }
    }

    #[test]
    fn flips_wrap_modulo_word_length() {
        let codec = JustesenCodec::<Compact>::new();
        let msg = Compact(5);
        let mut a = codec.encode(&msg);
        let mut b = codec.encode(&msg);
        a.flip_bit(3);
        b.flip_bit(3 + codec.output_bits());
        assert_eq!(a, b);
    }
}
