//! Fault-tolerant τ-token packaging: the Theorem 5.1 pipeline hardened
//! against bit flips and message drops.
//!
//! Every phase travels through the [`JustesenCodec`], so any pattern of
//! at most [`JustesenCodec::correction_radius`] flips per wire word is
//! corrected transparently — below the radius a faulted run produces
//! **the same packages** as a fault-free one. Drops (and flips beyond
//! the radius, which decode failures degrade into drops) are handled
//! per phase:
//!
//! * leader election — max-id flooding is self-stabilizing: a lost flood
//!   is re-triggered by the next improving id, and no fault can displace
//!   the maximum holder;
//! * BFS — a dropped announcement can cost a node its shortest parent,
//!   but the tree stays valid; a node that never hears any announcement
//!   surfaces as [`EngineError::Unreached`](dut_netsim::engine::EngineError);
//! * residue — recomputed as `c(v) = (Σ tokens in subtree(v)) mod τ`
//!   from a **reliable** (ack/retry) convergecast of subtree token
//!   counts, identical to the paper's bottom-up residue by the mod-τ
//!   telescoping identity `own + Σ c(child) ≡ Σ subtree (mod τ)`;
//! * forwarding — pipelined token forwarding has no retry layer, so an
//!   uncorrected loss either starves a node short of its quota (a
//!   round-limit error) or fails the token-conservation check after the
//!   run — never silently wrong packages.

use crate::codec::JustesenCodec;
use crate::packaging::{
    cut_packages, forward_round_limit, forward_states, tokens_lost, PackagingError,
    PackagingResult, RobustStage,
};
use dut_netsim::algorithms::coded::{codec_stats, CodedProtocol};
use dut_netsim::algorithms::{
    build_bfs_tree_coded, elect_leader_coded, reliable_convergecast_sums_coded, RelMsg, RetryPolicy,
};
use dut_netsim::engine::{BandwidthModel, Compact, EngineScratch, Network, RunOptions};
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::ImplicitTopology;
use dut_obs::Sink;

/// Fault-handling totals of one robust packaging (or tester) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustStats {
    /// Wire bits the codec corrected across all phases.
    pub corrected_bits: u64,
    /// Wire words discarded as undecodable (degraded into drops).
    pub decode_failures: u64,
    /// ARQ retransmissions across the reliable phases.
    pub retransmits: u64,
    /// Deliveries the ARQ layer gave up on for good.
    pub failures: u64,
}

impl RobustStats {
    pub(crate) fn absorb_codec(&mut self, stats: dut_netsim::algorithms::CodecStats) {
        self.corrected_bits += stats.corrected_bits;
        self.decode_failures += stats.decode_failures;
    }
}

/// The CONGEST bandwidth budget a robust run needs: one Justesen
/// codeword per directed edge per round, sized for the widest message
/// type in the pipeline.
pub fn robust_bandwidth_model() -> BandwidthModel {
    let compact = JustesenCodec::<Compact>::new().output_bits();
    let relmsg = JustesenCodec::<RelMsg>::new().output_bits();
    BandwidthModel::Congest {
        bits_per_edge: compact.max(relmsg),
    }
}

/// Solves τ-token packaging under a [`FaultPlan`], with every message
/// Justesen-encoded and the residue phase running over the ack/retry
/// convergecast. `max_retries` bounds per-message retransmissions in
/// the reliable phase.
///
/// `model` must budget at least one codeword per edge per round — use
/// [`robust_bandwidth_model`].
///
/// # Errors
///
/// Same conditions as
/// [`solve_token_packaging`](crate::packaging::solve_token_packaging),
/// plus [`PackagingError::FaultOverwhelmed`] when the retry budget was
/// not enough to recover every subtree report.
#[allow(clippy::too_many_arguments)]
pub fn solve_token_packaging_robust<T: ImplicitTopology>(
    g: &T,
    tokens: &[Vec<u64>],
    ids: &[u64],
    tau: usize,
    model: BandwidthModel,
    plan: &FaultPlan,
    max_retries: usize,
    sink: &mut dyn Sink,
) -> Result<(PackagingResult, RobustStats), PackagingError> {
    if tau == 0 {
        return Err(PackagingError::ZeroTau);
    }
    let k = g.node_count();
    if tokens.len() != k || ids.len() != k {
        return Err(PackagingError::LengthMismatch {
            nodes: k,
            tokens: tokens.len(),
            ids: ids.len(),
        });
    }
    let mut stats = RobustStats::default();
    let compact_codec = JustesenCodec::<Compact>::new();

    // Phase 1: leader election (max id), coded.
    let (leader, rounds_leader, leader_stats) =
        elect_leader_coded(g, ids, model, plan, compact_codec.clone())?;
    stats.absorb_codec(leader_stats);

    // Phase 2: BFS tree from the leader, coded.
    let (tree, rounds_bfs, bfs_stats) =
        build_bfs_tree_coded(g, leader, model, plan, compact_codec.clone())?;
    stats.absorb_codec(bfs_stats);

    // Phase 3: residues from a reliable convergecast of subtree token
    // counts — c(v) = subtree_count(v) mod τ, which telescopes to the
    // paper's bottom-up residue.
    let counts: Vec<u64> = tokens.iter().map(|t| t.len() as u64).collect();
    // Size the retry policy for the worst scheduled outage: a node that
    // crashes and rejoins must find its ARQ peers still retrying, so a
    // recoverable outage never surfaces as FaultOverwhelmed.
    let policy =
        RetryPolicy::for_tree(&tree, max_retries).allowing_outage(plan.max_outage_rounds());
    let (sums, residue_cost, residue_stats) = reliable_convergecast_sums_coded(
        g,
        &tree,
        &counts,
        model,
        plan,
        policy,
        JustesenCodec::<RelMsg>::new(),
        sink,
    )?;
    stats.absorb_codec(residue_stats);
    stats.retransmits += residue_cost.retransmits;
    stats.failures += residue_cost.failures;
    if residue_cost.failures > 0 {
        // One report expected per non-root node; every failure is a
        // report (or its ack chain) the retry budget could not land.
        let expected = (k - 1) as u64;
        return Err(PackagingError::FaultOverwhelmed {
            failures: residue_cost.failures,
            stage: RobustStage::Residue,
            round: rounds_leader + rounds_bfs + residue_cost.rounds,
            expected,
            observed: expected.saturating_sub(residue_cost.failures),
        });
    }
    let quotas: Vec<u64> = sums.iter().map(|&s| s % tau as u64).collect();

    // Phase 4: pipelined forwarding, coded. No retry layer here: an
    // uncorrected loss hits the round limit (quota starved) or the
    // conservation check below (quota met, group short).
    let states: Vec<_> = forward_states(&tree, tokens, &quotas)
        .into_iter()
        .map(|s| CodedProtocol::new(s, compact_codec.clone()))
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let options = RunOptions::default().with_faults(plan.clone());
    let forward_report = net.run_with_options(
        states,
        forward_round_limit(tau, &tree),
        &mut scratch,
        &options,
    )?;
    stats.absorb_codec(codec_stats(&forward_report.nodes));

    // Token conservation: a dropped forwarding message loses its token
    // in flight, and the starved node downstream may still quiesce with
    // a partial group — count losses before cutting so a lossy run errs
    // out instead of packaging short.
    let total: usize = tokens.iter().map(Vec::len).sum();
    let lost = tokens_lost(forward_report.nodes.iter().map(|n| n.inner()), total);
    if lost > 0 {
        return Err(PackagingError::FaultOverwhelmed {
            failures: lost as u64,
            stage: RobustStage::Forwarding,
            round: rounds_leader + rounds_bfs + residue_cost.rounds + forward_report.rounds,
            expected: total as u64,
            observed: (total - lost) as u64,
        });
    }

    let (packages, discarded) = cut_packages(forward_report.nodes.iter().map(|n| n.inner()), tau);
    Ok((
        PackagingResult {
            packages,
            discarded,
            rounds: rounds_leader + rounds_bfs + residue_cost.rounds + forward_report.rounds,
            bits: residue_cost.bits + forward_report.total_bits,
            tree,
            leader,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packaging::solve_token_packaging;
    use dut_netsim::topology;
    use dut_obs::NoopSink;

    fn unique_tokens(k: usize, per_node: usize) -> Vec<Vec<u64>> {
        let mut next = 0u64;
        (0..k)
            .map(|_| {
                (0..per_node)
                    .map(|_| {
                        next += 1;
                        next
                    })
                    .collect()
            })
            .collect()
    }

    fn shuffled_ids(k: usize, seed: u64) -> Vec<u64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (0..k as u64).collect();
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        ids
    }

    #[test]
    fn fault_free_robust_matches_plain_packaging() {
        let g = topology::grid(4, 5);
        let k = g.node_count();
        let tokens = unique_tokens(k, 2);
        let ids = shuffled_ids(k, 9);
        let model = robust_bandwidth_model();
        let plain = solve_token_packaging(&g, &tokens, &ids, 3, model).unwrap();
        let (robust, stats) = solve_token_packaging_robust(
            &g,
            &tokens,
            &ids,
            3,
            model,
            &FaultPlan::none(),
            4,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(robust.packages, plain.packages);
        assert_eq!(robust.discarded, plain.discarded);
        assert_eq!(robust.leader, plain.leader);
        assert_eq!(robust.tree, plain.tree);
        assert_eq!(stats, RobustStats::default());
    }

    #[test]
    fn flips_below_radius_leave_packages_identical() {
        // ~465-bit codewords at flip rate 3e-4 average ~0.14 flips per
        // word; the odds of any word collecting > 5 (the certified
        // radius) are negligible at this fixed seed, so every flip is
        // corrected and the packages match the fault-free run exactly.
        let g = topology::grid(4, 5);
        let k = g.node_count();
        let tokens = unique_tokens(k, 2);
        let ids = shuffled_ids(k, 9);
        let model = robust_bandwidth_model();
        let clean = solve_token_packaging(&g, &tokens, &ids, 3, model).unwrap();
        let plan = FaultPlan::seeded(0xEC0).with_flips(3e-4);
        let (robust, stats) =
            solve_token_packaging_robust(&g, &tokens, &ids, 3, model, &plan, 4, &mut NoopSink)
                .unwrap();
        assert_eq!(robust.packages, clean.packages);
        assert_eq!(robust.discarded, clean.discarded);
        assert_eq!(robust.tree, clean.tree);
        assert!(stats.corrected_bits > 0, "plan must actually flip bits");
        assert_eq!(stats.decode_failures, 0);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn drops_in_residue_phase_are_retried() {
        // A grid, not a line: BFS announcements go out once per adopter,
        // so a node survives drops only if *some* neighbor's announcement
        // lands. The reliable residue phase retries; the flood phases
        // rely on redundancy.
        let g = topology::grid(3, 4);
        let k = g.node_count();
        let tokens = unique_tokens(k, 1);
        let ids = shuffled_ids(k, 5);
        let model = robust_bandwidth_model();
        let plan = FaultPlan::seeded(0x0D20).with_drops(0.1);
        let result =
            solve_token_packaging_robust(&g, &tokens, &ids, 3, model, &plan, 8, &mut NoopSink);
        match result {
            Ok((r, stats)) => {
                // Whenever the run survives, Definition 2 must hold
                // exactly: the retries made the residue phase lossless.
                assert!(stats.failures == 0);
                let packaged: usize = r.packages.len() * 3;
                assert!(k - packaged < 3);
                assert_eq!(k - packaged, r.discarded);
            }
            Err(e) => panic!("seed chosen to survive 10% drops: {e}"),
        }
    }

    #[test]
    fn crash_rejoin_outage_is_absorbed_by_widened_policy() {
        // With ids 1..=8 on a line the leader is node 7 and the BFS
        // tree is the chain 7→6→…→0. Node 6 sleeps through rounds
        // 4..11 of each phase: the floods have already passed it (it
        // adopts at round 1, its last inbound flood message lands at
        // round 3), the forwarding phase sends all quota tokens in the
        // first two rounds, but node 5's residue report — sent at round
        // 5 — lands squarely in the outage. The outage-widened retry
        // policy keeps node 5 retrying until node 6 is back, so the run
        // completes with exact packages instead of FaultOverwhelmed.
        let g = topology::line(8);
        let k = g.node_count();
        let tokens = unique_tokens(k, 2);
        let ids: Vec<u64> = (1..=k as u64).collect();
        let model = robust_bandwidth_model();
        let clean = solve_token_packaging(&g, &tokens, &ids, 3, model).unwrap();
        let plan = FaultPlan::seeded(0x2E10)
            .with_crash(6, 4)
            .with_rejoin(6, 12);
        let (robust, stats) =
            solve_token_packaging_robust(&g, &tokens, &ids, 3, model, &plan, 2, &mut NoopSink)
                .unwrap();
        assert_eq!(stats.failures, 0, "outage must be absorbed, not fatal");
        assert!(
            stats.retransmits > 0,
            "the outage must actually force retries"
        );
        assert_eq!(robust.packages, clean.packages);
        assert_eq!(robust.discarded, clean.discarded);
    }

    #[test]
    fn fault_overwhelmed_reports_stage_round_and_counts() {
        // Same line, but node 6 never comes back: node 5's report can
        // never land (retry budget exhausted) and the root's deadline
        // fires with child 6 unreported. The error must say which stage
        // broke, how deep into the pipeline, and how many reports
        // survived. Fully deterministic — no drops, no flips.
        let g = topology::line(8);
        let k = g.node_count();
        let tokens = unique_tokens(k, 1);
        let ids: Vec<u64> = (1..=k as u64).collect();
        let model = robust_bandwidth_model();
        let plan = FaultPlan::seeded(0xDEAD).with_crash(6, 4);
        let err =
            solve_token_packaging_robust(&g, &tokens, &ids, 3, model, &plan, 1, &mut NoopSink)
                .unwrap_err();
        match err {
            PackagingError::FaultOverwhelmed {
                failures,
                stage,
                round,
                expected,
                observed,
            } => {
                assert_eq!(stage, RobustStage::Residue);
                // Node 5's give-up plus the root's unreported child.
                assert_eq!(failures, 2);
                assert!(round > 0, "round must locate the failure in the pipeline");
                assert_eq!(expected, (k - 1) as u64);
                assert_eq!(observed, expected - failures);
                let msg = format!(
                    "{}",
                    PackagingError::FaultOverwhelmed {
                        failures,
                        stage,
                        round,
                        expected,
                        observed,
                    }
                );
                assert!(msg.contains("residue"), "display names the stage: {msg}");
            }
            other => panic!("expected FaultOverwhelmed, got: {other:?}"),
        }
    }

    #[test]
    fn overwhelming_drops_error_rather_than_mispackage() {
        let g = topology::line(10);
        let k = g.node_count();
        let tokens = unique_tokens(k, 1);
        let ids = shuffled_ids(k, 5);
        let model = robust_bandwidth_model();
        let plan = FaultPlan::seeded(0xBAD).with_drops(0.95);
        let err =
            solve_token_packaging_robust(&g, &tokens, &ids, 3, model, &plan, 1, &mut NoopSink)
                .unwrap_err();
        // Depending on where the drops land this surfaces as an
        // unreached BFS node, an exhausted retry budget, or a starved
        // forwarding pipeline — never as silently wrong packages.
        match err {
            PackagingError::Engine(_) | PackagingError::FaultOverwhelmed { .. } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
