//! Seeded lazy random walks as a CONGEST protocol.
//!
//! Every node launches `walks_per_node` walk tokens labeled with their
//! *source* node; each round every token independently stays put with
//! probability 1/2 or moves to a uniformly chosen neighbor. Tokens with
//! the same (node, source) coordinates are indistinguishable, so the
//! wire carries **counts** — one [`WalkMsg`] `(source, count)` per
//! (edge, source) pair per round — and a node's state is the per-source
//! token census [`WalkNode::counts`].
//!
//! # The counter-keyed coin discipline
//!
//! Walk coins come from [`walk_word`], a stateless splitmix64 chain
//! over the coordinates `(seed, round, node, source, slot)` — the same
//! discipline [`dut_netsim::fault::FaultPlan`] uses for drop/flip
//! coins. No mutable RNG is ever consulted, so a token's trajectory is
//! a pure function of the run seed and the (order-independent,
//! commutatively aggregated) token census. That makes the final census
//! bit-identical across the serial engine, the sharded parallel engine
//! at any thread count, and the naive reference engine — clean or under
//! any [`FaultPlan`] — which the conductance pipeline's differential
//! suites assert.
//!
//! # Congestion envelope
//!
//! At most one [`WalkMsg`] per source crosses a directed edge per
//! round, so [`walk_bandwidth_model`] budgets `k` messages per edge.
//! That is the worst case (every source's tokens funneling through one
//! edge); the realized per-round maximum is reported in
//! [`WalkOutcome::max_edge_bits`] and is far smaller on expanders —
//! the paper's O(ℓ·log n) congestion claim, observable per run.

use dut_netsim::algorithms::coded::{codec_stats, CodecStats, CodedProtocol, MessageCodec};
use dut_netsim::engine::{
    BandwidthModel, Compact, EngineError, EngineScratch, MessageSize, Network, NodeProtocol,
    Outbox, RunOptions, RunReport,
};
use dut_netsim::fault::{FaultInjectable, FaultPlan};
use dut_netsim::graph::{Graph, ImplicitTopology, NodeId};
use dut_netsim::reference::{run_reference, run_reference_faulted};
use dut_obs::{NoopSink, Sink};

/// Lane constant separating walk coins from every other counter-keyed
/// stream in the workspace (the fault plan's drop/flip lanes use their
/// own odd constants).
pub const LANE_WALK: u64 = 0xA5A5_1D0C_9E37_79B9;

/// The splitmix64 finalizer (same mixer as the fault-plan streams).
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The walk coin for token slot `slot` of source `src` at `node` in
/// `round`: bit 0 is the lazy coin (0 = stay), the remaining bits pick
/// the neighbor index on a move. Stateless and order-independent —
/// see the module docs for why this is the bit-identity keystone.
#[inline]
pub fn walk_word(seed: u64, round: u64, node: u64, src: u64, slot: u64) -> u64 {
    let mut h = mix(seed ^ LANE_WALK);
    h = mix(h.wrapping_add(round));
    h = mix(h ^ node);
    h = mix(h ^ src);
    mix(h ^ slot)
}

/// One wire message of the walk phase: `cnt` tokens of source `src`
/// crossing an edge this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkMsg {
    /// Source node the tokens were launched from.
    pub src: u64,
    /// Number of tokens crossing together.
    pub cnt: u64,
}

impl MessageSize for WalkMsg {
    fn size_bits(&self) -> usize {
        Compact(self.src).size_bits() + Compact(self.cnt).size_bits()
    }
}

impl FaultInjectable for WalkMsg {
    fn flip_bit(&mut self, bit: usize) {
        // Flip within the 128-bit packed representation, mirroring
        // `CodecMessage`: low word = src, high word = cnt.
        let bit = bit % 128;
        if bit < 64 {
            self.src ^= 1u64 << bit;
        } else {
            self.cnt ^= 1u64 << (bit - 64);
        }
    }
}

impl dut_netsim::algorithms::coded::CodecMessage for WalkMsg {
    const PACKED_BITS: usize = 128;

    fn to_bits(&self) -> u128 {
        u128::from(self.src) | (u128::from(self.cnt) << 64)
    }

    fn from_bits(bits: u128) -> Self {
        WalkMsg {
            src: bits as u64,
            cnt: (bits >> 64) as u64,
        }
    }
}

/// Per-node state of the walk protocol: the per-source token census.
#[derive(Debug, Clone)]
pub struct WalkNode {
    seed: u64,
    walk_len: usize,
    counts: Vec<u64>,
    move_buf: Vec<u64>,
    done: bool,
}

impl WalkNode {
    /// A node of a `k`-node network holding `walks_per_node` freshly
    /// launched tokens of its own source `own`.
    pub fn new(k: usize, own: NodeId, walks_per_node: u64, seed: u64, walk_len: usize) -> Self {
        let mut counts = vec![0u64; k];
        counts[own] = walks_per_node;
        WalkNode {
            seed,
            walk_len,
            counts,
            move_buf: Vec::new(),
            done: false,
        }
    }

    /// The final census: tokens of each source currently at this node.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total tokens at this node (for conservation checks).
    pub fn total_tokens(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl NodeProtocol for WalkNode {
    type Msg = WalkMsg;

    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, WalkMsg)],
        out: &mut Outbox<'_, WalkMsg>,
    ) {
        // Absorb arrivals. Addition commutes, so inbox order — the one
        // thing that varies in *intermediate* buffers across engines —
        // cannot influence the census.
        for (_, msg) in inbox {
            if let Some(slot) = self.counts.get_mut(msg.src as usize) {
                *slot += msg.cnt;
            }
            // An out-of-range source can only come from an uncorrected
            // bit flip on a plain (uncoded) faulted run; dropping it is
            // a token loss the conservation check downstream reports.
        }
        if round >= self.walk_len {
            self.done = true;
            return;
        }
        let nbrs = out.neighbors();
        if nbrs.is_empty() {
            return;
        }
        let deg = nbrs.len() as u64;
        let seed = self.seed;
        self.move_buf.clear();
        self.move_buf.resize(nbrs.len(), 0);
        for (src, count) in self.counts.iter_mut().enumerate() {
            let c = *count;
            if c == 0 {
                continue;
            }
            self.move_buf.iter_mut().for_each(|m| *m = 0);
            let mut stay = 0u64;
            for slot in 0..c {
                let w = walk_word(seed, round as u64, node as u64, src as u64, slot);
                if w & 1 == 0 {
                    stay += 1;
                } else {
                    self.move_buf[((w >> 1) % deg) as usize] += 1;
                }
            }
            *count = stay;
            for (j, &moved) in self.move_buf.iter().enumerate() {
                if moved > 0 {
                    out.send(
                        nbrs[j],
                        WalkMsg {
                            src: src as u64,
                            cnt: moved,
                        },
                    );
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Initial states for a `k`-node walk run.
pub fn walk_states(k: usize, walks_per_node: u64, seed: u64, walk_len: usize) -> Vec<WalkNode> {
    (0..k)
        .map(|v| WalkNode::new(k, v, walks_per_node, seed, walk_len))
        .collect()
}

/// The CONGEST budget of the walk phase: at most one `(src, cnt)`
/// message per source per directed edge per round, each at most
/// `bitlen(k) + bitlen(k·ℓ)` bits.
pub fn walk_bandwidth_model(k: usize, walks_per_node: u64) -> BandwidthModel {
    let bitlen = |x: u64| 64 - x.max(1).leading_zeros() as usize;
    let total = (k as u64).saturating_mul(walks_per_node);
    let per_msg = bitlen(k as u64) + bitlen(total);
    BandwidthModel::Congest {
        bits_per_edge: (k * per_msg).max(2),
    }
}

/// The CONGEST budget of the *coded* walk phase: one codeword
/// (`codeword_bits` wire bits) per source per directed edge per round.
pub fn walk_coded_bandwidth_model(k: usize, codeword_bits: usize) -> BandwidthModel {
    BandwidthModel::Congest {
        bits_per_edge: (k * codeword_bits).max(2),
    }
}

/// The walk phase's outcome: the full census plus engine cost totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkOutcome {
    /// `counts[v][src]` = tokens of source `src` resting at node `v`.
    pub counts: Vec<Vec<u64>>,
    /// Rounds the walk run used (walk length + the quiescence round).
    pub rounds: usize,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bits metered by the bandwidth model.
    pub bits: u64,
    /// Max bits that crossed any single directed edge in any round —
    /// the *realized* congestion under the worst-case budget.
    pub max_edge_bits: usize,
    /// Messages dropped by fault injection (token losses).
    pub dropped_messages: u64,
    /// Wire bits flipped by fault injection.
    pub flipped_bits: u64,
}

impl WalkOutcome {
    /// Total surviving tokens across all nodes.
    pub fn total_tokens(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// The endpoint collision statistic: `Σ_v Σ_src C(counts[v][src], 2)`
    /// — unordered same-source token pairs resting on the same node.
    pub fn collision_statistic(&self) -> u64 {
        self.counts
            .iter()
            .flatten()
            .map(|&c| c * c.saturating_sub(1) / 2)
            .sum()
    }
}

fn outcome_from_report(report: RunReport<WalkNode>) -> WalkOutcome {
    WalkOutcome {
        counts: report.nodes.iter().map(|n| n.counts.to_vec()).collect(),
        rounds: report.rounds,
        messages: report.total_messages as u64,
        bits: report.total_bits as u64,
        max_edge_bits: report.max_edge_bits_per_round,
        dropped_messages: report.dropped_messages as u64,
        flipped_bits: report.flipped_bits as u64,
    }
}

/// Runs the walk phase on the flat-buffer engine (serial, default
/// options).
///
/// # Errors
///
/// Same conditions as [`Network::run`]; in particular a budget below
/// [`walk_bandwidth_model`]'s envelope can surface as
/// [`EngineError::BandwidthExceeded`].
pub fn run_walks<T: ImplicitTopology>(
    g: &T,
    seed: u64,
    walks_per_node: u64,
    walk_len: usize,
    model: BandwidthModel,
) -> Result<WalkOutcome, EngineError> {
    run_walks_observed(
        g,
        seed,
        walks_per_node,
        walk_len,
        model,
        &RunOptions::default(),
        &mut NoopSink,
    )
}

/// [`run_walks`] with explicit [`RunOptions`] (thread count, sharded
/// delivery, fault plan) and metric recording. Successful runs are
/// bit-identical for every option combination.
///
/// # Errors
///
/// Same conditions as [`Network::run`].
pub fn run_walks_observed<T: ImplicitTopology>(
    g: &T,
    seed: u64,
    walks_per_node: u64,
    walk_len: usize,
    model: BandwidthModel,
    options: &RunOptions,
    sink: &mut dyn Sink,
) -> Result<WalkOutcome, EngineError> {
    let states = walk_states(g.node_count(), walks_per_node, seed, walk_len);
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let report =
        net.run_with_options_observed(states, walk_len + 4, &mut scratch, options, sink)?;
    Ok(outcome_from_report(report))
}

/// Runs the walk phase on the naive reference engine — the executable
/// specification the differential suites compare the flat engine
/// against.
///
/// # Errors
///
/// Same conditions as [`Network::run`].
pub fn run_walks_reference(
    g: &Graph,
    seed: u64,
    walks_per_node: u64,
    walk_len: usize,
    model: BandwidthModel,
) -> Result<WalkOutcome, EngineError> {
    let states = walk_states(g.node_count(), walks_per_node, seed, walk_len);
    let report = run_reference(g, model, states, walk_len + 4)?;
    Ok(outcome_from_report(report))
}

/// [`run_walks_reference`] under a [`FaultPlan`].
///
/// # Errors
///
/// Same conditions as [`Network::run`].
pub fn run_walks_reference_faulted(
    g: &Graph,
    seed: u64,
    walks_per_node: u64,
    walk_len: usize,
    model: BandwidthModel,
    plan: &FaultPlan,
) -> Result<WalkOutcome, EngineError> {
    let states = walk_states(g.node_count(), walks_per_node, seed, walk_len);
    let report = run_reference_faulted(g, model, states, walk_len + 4, plan)?;
    Ok(outcome_from_report(report))
}

/// Runs the walk phase with every message travelling through `codec`
/// under a [`FaultPlan`]: flips below the codec's correction radius
/// are corrected transparently (the census matches the fault-free
/// run exactly), while drops and undecodable words lose their tokens —
/// which the pipeline's conservation check converts into a typed
/// error rather than a silently skewed statistic.
///
/// # Errors
///
/// Same conditions as [`Network::run`].
#[allow(clippy::too_many_arguments)]
pub fn run_walks_coded<T, C>(
    g: &T,
    seed: u64,
    walks_per_node: u64,
    walk_len: usize,
    model: BandwidthModel,
    plan: &FaultPlan,
    codec: C,
    options: &RunOptions,
    sink: &mut dyn Sink,
) -> Result<(WalkOutcome, CodecStats), EngineError>
where
    T: ImplicitTopology,
    C: MessageCodec<Plain = WalkMsg> + Clone + Send,
    C::Wire: Send + Sync,
{
    let k = g.node_count();
    let states: Vec<CodedProtocol<WalkNode, C>> = (0..k)
        .map(|v| {
            CodedProtocol::new(
                WalkNode::new(k, v, walks_per_node, seed, walk_len),
                codec.clone(),
            )
        })
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let opts = options.clone().with_faults(plan.clone());
    let report = net.run_with_options_observed(states, walk_len + 4, &mut scratch, &opts, sink)?;
    let stats = codec_stats(&report.nodes);
    let outcome = WalkOutcome {
        counts: report
            .nodes
            .iter()
            .map(|n| n.inner().counts.to_vec())
            .collect(),
        rounds: report.rounds,
        messages: report.total_messages as u64,
        bits: report.total_bits as u64,
        max_edge_bits: report.max_edge_bits_per_round,
        dropped_messages: report.dropped_messages as u64,
        flipped_bits: report.flipped_bits as u64,
    };
    Ok((outcome, stats))
}
