//! Distributed conductance testing on the CONGEST substrate
//! (Fichtenberger–Vasudev, *Distributed Testing of Conductance*).
//!
//! A second property-testing workload on the same machinery as the
//! uniformity tester: the network decides whether its **own topology**
//! is a Φ-expander or ε-far from every Φ*-expander, using
//! O(log n / (εΦ²)) rounds of seeded lazy random walks
//! ([`walk`]) plus the leader-election / BFS-tree / convergecast /
//! broadcast pipeline the Theorem 5.1 tester already uses.
//!
//! # Protocol
//!
//! 1. **Leader + tree** — max-id flooding elects a root, a BFS tree is
//!    built from it (the same phases as token packaging).
//! 2. **Degree census** — convergecasts of `Σ deg(v)` and `Σ deg(v)²`
//!    give the root the stationary distribution's collision norm
//!    `‖π‖₂² = Σ deg²/(2m)²` — the mixed-walk baseline.
//! 3. **Walk phase** — every node launches ℓ source-labeled lazy walk
//!    tokens; after L = Θ(log k / Φ) rounds the per-source endpoint
//!    census is frozen ([`walk::WalkOutcome`]).
//! 4. **Collision statistic** — each node counts same-source resting
//!    pairs `Σ_src C(c_{v,src}, 2)`; a convergecast sums them into
//!    `S = Σ_u C(ℓ,2)·‖p_u^L‖₂²` in expectation.
//! 5. **Verdict** — on a Φ-expander every source distribution has
//!    mixed, so `E[S] ≈ k·C(ℓ,2)·‖π‖₂²`; on a graph ε-far from a
//!    Φ*-expander a constant fraction of walks stay trapped in a
//!    low-conductance part, at least doubling the endpoint collision
//!    mass. The root accepts iff `2·S·(2m)² ≤ 3·k·C(ℓ,2)·Σdeg²`
//!    (exact integer arithmetic — the 3/2 factor splits the gap) and
//!    broadcasts the [`ConductanceVerdict`].
//!
//! [`ConductanceTester::run_robust`] composes the same pipeline with
//! the coded/ARQ layer: tree phases run Justesen-coded, the degree /
//! collision aggregations use the reliable (ack/retry) convergecast
//! with outage-widened deadlines, the walk phase sends codewords, and
//! a token-conservation check converts any walk-phase loss into a
//! typed [`ConductanceError::FaultOverwhelmed`] instead of a silently
//! skewed statistic — the same honesty contract as robust packaging.
//!
//! Everything downstream of the seed is deterministic: the walk coins
//! come from a counter-keyed splitmix64 stream, so serial, sharded
//! (any thread count), and reference engines produce bit-identical
//! walk statistics, clean or faulted — see [`walk`].

pub mod walk;

use crate::codec::JustesenCodec;
use crate::robust::{robust_bandwidth_model, RobustStats};
use dut_netsim::algorithms::{
    broadcast_value_observed, build_bfs_tree, build_bfs_tree_coded, convergecast_sum_observed,
    elect_leader, elect_leader_coded, reliable_broadcast_value_coded,
    reliable_convergecast_sums_coded, BfsTree, RelMsg, RetryPolicy,
};
use dut_netsim::engine::{BandwidthModel, EngineError, RunOptions};
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::{ImplicitTopology, NodeId};
use dut_obs::{keys, NoopSink, Sink};
use walk::{run_walks_coded, run_walks_observed, walk_bandwidth_model, WalkMsg, WalkOutcome};

/// Why a conductance plan could not be built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConductancePlanError {
    /// The network needs at least two nodes to walk on.
    TooFewNodes {
        /// The offending node count.
        k: usize,
    },
    /// Φ must be in (0, 1).
    BadPhi {
        /// The offending conductance parameter.
        phi: f64,
    },
    /// ε must be in (0, 2].
    BadEpsilon {
        /// The offending distance parameter.
        epsilon: f64,
    },
    /// Walks per node must be at least 2 (the statistic counts pairs).
    TooFewWalks {
        /// The offending walk count.
        walks: u64,
    },
}

impl std::fmt::Display for ConductancePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConductancePlanError::TooFewNodes { k } => {
                write!(f, "conductance testing needs k >= 2 nodes, got {k}")
            }
            ConductancePlanError::BadPhi { phi } => {
                write!(f, "conductance parameter must be in (0, 1), got {phi}")
            }
            ConductancePlanError::BadEpsilon { epsilon } => {
                write!(f, "distance parameter must be in (0, 2], got {epsilon}")
            }
            ConductancePlanError::TooFewWalks { walks } => {
                write!(f, "need at least 2 walks per node for pairs, got {walks}")
            }
        }
    }
}

impl std::error::Error for ConductancePlanError {}

/// The pipeline stage a fault overwhelmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConductanceStage {
    /// The retry-free walk phase lost tokens (dropped or undecodable
    /// walk messages, or messages in flight to a crashed node).
    Walk,
    /// A reliable aggregation phase exhausted its retry budget.
    Collect,
}

impl std::fmt::Display for ConductanceStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConductanceStage::Walk => write!(f, "walk"),
            ConductanceStage::Collect => write!(f, "collect"),
        }
    }
}

/// A conductance run that could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConductanceError {
    /// The engine failed (round limit, bandwidth violation, unreached
    /// node, …).
    Engine(EngineError),
    /// Faults exceeded what the pipeline absorbs: the run is abandoned
    /// with a typed report instead of a silently wrong verdict.
    FaultOverwhelmed {
        /// Which stage broke.
        stage: ConductanceStage,
        /// Cumulative pipeline round the failure was detected at.
        round: usize,
        /// Units expected (walk tokens, or subtree reports).
        expected: u64,
        /// Units that survived.
        observed: u64,
    },
}

impl std::fmt::Display for ConductanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConductanceError::Engine(e) => write!(f, "engine error: {e}"),
            ConductanceError::FaultOverwhelmed {
                stage,
                round,
                expected,
                observed,
            } => write!(
                f,
                "faults overwhelmed the {stage} stage at pipeline round {round}: \
                 {observed} of {expected} survived"
            ),
        }
    }
}

impl std::error::Error for ConductanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConductanceError::Engine(e) => Some(e),
            ConductanceError::FaultOverwhelmed { .. } => None,
        }
    }
}

impl From<EngineError> for ConductanceError {
    fn from(e: EngineError) -> Self {
        ConductanceError::Engine(e)
    }
}

/// The typed verdict of a conductance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConductanceVerdict {
    /// The walk statistic is consistent with a Φ-expander: accepted.
    Expander,
    /// The endpoint collision mass is too high: the graph is far from
    /// every Φ*-expander: rejected.
    FarFromExpander,
}

impl ConductanceVerdict {
    /// Whether the verdict accepts (the graph looked like an expander).
    pub fn accepts(self) -> bool {
        matches!(self, ConductanceVerdict::Expander)
    }
}

/// The outcome of one conductance run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConductanceRunResult {
    /// The root's (broadcast) verdict.
    pub verdict: ConductanceVerdict,
    /// The endpoint collision statistic `S` the root aggregated.
    pub collisions: u64,
    /// The acceptance threshold `1.5·k·C(ℓ,2)·Σdeg²/(2m)²` the root
    /// compared `S` against (derived value; the decision itself is
    /// exact integer arithmetic).
    pub threshold: f64,
    /// Total pipeline rounds (all phases).
    pub rounds: usize,
    /// Rounds of the walk phase alone.
    pub walk_rounds: usize,
    /// Total payload bits across all phases.
    pub bits: u64,
    /// Max bits over any directed edge in any walk round (realized
    /// congestion; the budget is the worst-case envelope).
    pub max_edge_bits: usize,
    /// Surviving walk tokens (equals `k·ℓ` on every successful run —
    /// the conservation check errors out otherwise).
    pub tokens: u64,
    /// The elected root.
    pub leader: NodeId,
    /// Height of the BFS tree (diameter proxy for the round bound).
    pub tree_height: usize,
    /// Convergecast `Σ deg(v)` (= 2·edges).
    pub sum_deg: u64,
    /// Convergecast `Σ deg(v)²`.
    pub sum_deg_sq: u64,
}

/// A planned two-sided conductance tester for a `k`-node network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductanceTester {
    /// Network size the plan is for.
    pub k: usize,
    /// Conductance the completeness side promises (Φ).
    pub phi: f64,
    /// Distance the soundness side rejects at (ε).
    pub epsilon: f64,
    /// Walk tokens launched per node (ℓ).
    pub walks_per_node: u64,
    /// Lazy-walk length in rounds (L).
    pub walk_len: usize,
}

impl ConductanceTester {
    /// Plans the tester: ℓ = max(8, ⌈12/ε⌉) source-labeled walks per
    /// node and walk length L = max(4, ⌈ln k / Φ⌉) — the spectral-gap
    /// mixing heuristic, always inside the paper's O(log n / (εΦ²))
    /// round envelope (see [`ConductanceTester::round_bound`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConductancePlanError`] when a parameter is outside
    /// its domain.
    pub fn plan(k: usize, phi: f64, epsilon: f64) -> Result<Self, ConductancePlanError> {
        if k < 2 {
            return Err(ConductancePlanError::TooFewNodes { k });
        }
        if !(phi > 0.0 && phi < 1.0 && phi.is_finite()) {
            return Err(ConductancePlanError::BadPhi { phi });
        }
        if !(epsilon > 0.0 && epsilon <= 2.0 && epsilon.is_finite()) {
            return Err(ConductancePlanError::BadEpsilon { epsilon });
        }
        let walks_per_node = (12.0 / epsilon).ceil().max(8.0) as u64;
        let walk_len = ((k as f64).ln() / phi).ceil().max(4.0) as usize;
        Ok(ConductanceTester {
            k,
            phi,
            epsilon,
            walks_per_node,
            walk_len,
        })
    }

    /// Overrides the walk count (ℓ ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns [`ConductancePlanError::TooFewWalks`] for ℓ < 2.
    pub fn with_walks(mut self, walks: u64) -> Result<Self, ConductancePlanError> {
        if walks < 2 {
            return Err(ConductancePlanError::TooFewWalks { walks });
        }
        self.walks_per_node = walks;
        Ok(self)
    }

    /// Overrides the walk length (clamped to ≥ 1).
    pub fn with_walk_len(mut self, walk_len: usize) -> Self {
        self.walk_len = walk_len.max(1);
        self
    }

    /// The paper's round envelope with Θ-constants 1:
    /// `D + ln k / (ε·Φ²)`, taking the BFS-tree height as the diameter
    /// proxy. Every successful run's `rounds` stays within a small
    /// constant of this (E16's verdict checks the ratio).
    pub fn round_bound(&self, tree_height: usize) -> f64 {
        tree_height as f64 + (self.k as f64).ln() / (self.epsilon * self.phi * self.phi)
    }

    /// Runs the plain pipeline (serial engine, no faults).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConductanceTester::run_observed`].
    pub fn run<T: ImplicitTopology>(
        &self,
        g: &T,
        seed: u64,
    ) -> Result<ConductanceRunResult, ConductanceError> {
        self.run_observed(g, seed, &RunOptions::default(), &mut NoopSink)
    }

    /// Runs the plain pipeline with explicit engine options for the
    /// walk phase (thread count, sharded delivery, fault plan) and
    /// metric recording under the `congest.conductance.*` keys.
    /// Successful runs are bit-identical for every option combination.
    ///
    /// # Errors
    ///
    /// [`ConductanceError::Engine`] on engine failures;
    /// [`ConductanceError::FaultOverwhelmed`] when a fault plan in
    /// `options` cost the walk phase tokens.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have exactly `k` nodes.
    pub fn run_observed<T: ImplicitTopology>(
        &self,
        g: &T,
        seed: u64,
        options: &RunOptions,
        sink: &mut dyn Sink,
    ) -> Result<ConductanceRunResult, ConductanceError> {
        assert_eq!(
            g.node_count(),
            self.k,
            "graph size does not match planned network size"
        );
        let tree_model = self.aggregation_model();
        let ids: Vec<u64> = (0..self.k as u64).collect();

        // Phase 1: leader election + BFS tree.
        let (leader, rounds_leader) = elect_leader(g, &ids, tree_model)?;
        let (tree, rounds_bfs) = build_bfs_tree(g, leader, tree_model)?;

        // Phase 2: degree census — the root learns ‖π‖₂²'s numerator
        // and denominator exactly.
        let degs = degree_values(g);
        let deg_sqs: Vec<u64> = degs.iter().map(|&d| d * d).collect();
        let (sum_deg, cost_deg) = convergecast_sum_observed(g, &tree, &degs, tree_model, sink)?;
        let (sum_deg_sq, cost_deg_sq) =
            convergecast_sum_observed(g, &tree, &deg_sqs, tree_model, sink)?;

        // Phase 3: the walk phase.
        let walk_model = walk_bandwidth_model(self.k, self.walks_per_node);
        let outcome = run_walks_observed(
            g,
            seed,
            self.walks_per_node,
            self.walk_len,
            walk_model,
            options,
            sink,
        )?;
        let pre_walk_rounds = rounds_leader + rounds_bfs + cost_deg.rounds + cost_deg_sq.rounds;
        self.check_conservation(&outcome, pre_walk_rounds)?;

        // Phase 4: collision convergecast.
        let collision_values: Vec<u64> = outcome
            .counts
            .iter()
            .map(|row| row.iter().map(|&c| c * c.saturating_sub(1) / 2).sum())
            .collect();
        let (collisions, cost_coll) =
            convergecast_sum_observed(g, &tree, &collision_values, tree_model, sink)?;

        // Phase 5: decide and broadcast.
        let accept = accepts(collisions, self.k, self.walks_per_node, sum_deg, sum_deg_sq);
        let (_, cost_bcast) =
            broadcast_value_observed(g, &tree, u64::from(accept), tree_model, sink)?;

        let result = self.assemble(
            accept,
            collisions,
            pre_walk_rounds + outcome.rounds + cost_coll.rounds + cost_bcast.rounds,
            &outcome,
            (cost_deg.bits + cost_deg_sq.bits + cost_coll.bits + cost_bcast.bits) as u64
                + outcome.bits,
            leader,
            &tree,
            sum_deg,
            sum_deg_sq,
        );
        record(sink, &result, false);
        Ok(result)
    }

    /// Runs the fault-hardened pipeline: coded leader/BFS phases,
    /// reliable (ack/retry, outage-widened) aggregations, Justesen
    /// codewords on every walk message, and a token-conservation check
    /// that converts walk-phase losses into a typed error. Flips below
    /// the codec radius leave the result identical to the fault-free
    /// run; crash/rejoin outages during the aggregation phases are
    /// absorbed by the widened retry deadlines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConductanceTester::run_robust_observed`].
    pub fn run_robust<T: ImplicitTopology>(
        &self,
        g: &T,
        seed: u64,
        plan: &FaultPlan,
        max_retries: usize,
    ) -> Result<(ConductanceRunResult, RobustStats), ConductanceError> {
        self.run_robust_observed(
            g,
            seed,
            plan,
            max_retries,
            &RunOptions::default(),
            &mut NoopSink,
        )
    }

    /// [`ConductanceTester::run_robust`] with explicit engine options
    /// for the walk phase and metric recording.
    ///
    /// # Errors
    ///
    /// [`ConductanceError::Engine`] on engine failures;
    /// [`ConductanceError::FaultOverwhelmed`] when drops (or flips
    /// beyond the codec radius, or an outage intersecting token
    /// traffic) cost the walk phase tokens, or when a reliable
    /// aggregation exhausted its retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not have exactly `k` nodes.
    pub fn run_robust_observed<T: ImplicitTopology>(
        &self,
        g: &T,
        seed: u64,
        plan: &FaultPlan,
        max_retries: usize,
        options: &RunOptions,
        sink: &mut dyn Sink,
    ) -> Result<(ConductanceRunResult, RobustStats), ConductanceError> {
        assert_eq!(
            g.node_count(),
            self.k,
            "graph size does not match planned network size"
        );
        let tree_model = robust_bandwidth_model();
        let ids: Vec<u64> = (0..self.k as u64).collect();
        let mut stats = RobustStats::default();
        let compact_codec = JustesenCodec::<dut_netsim::engine::Compact>::new();

        // Phase 1: coded leader election + BFS tree.
        let (leader, rounds_leader, leader_stats) =
            elect_leader_coded(g, &ids, tree_model, plan, compact_codec.clone())?;
        stats.absorb_codec(leader_stats);
        let (tree, rounds_bfs, bfs_stats) =
            build_bfs_tree_coded(g, leader, tree_model, plan, compact_codec)?;
        stats.absorb_codec(bfs_stats);
        let policy =
            RetryPolicy::for_tree(&tree, max_retries).allowing_outage(plan.max_outage_rounds());

        // Phase 2: reliable degree census.
        let degs = degree_values(g);
        let deg_sqs: Vec<u64> = degs.iter().map(|&d| d * d).collect();
        let mut pipeline_round = rounds_leader + rounds_bfs;
        let (sum_deg, sum_deg_sq);
        let mut agg_bits = 0u64;
        {
            let (sums, cost, cstats) = reliable_convergecast_sums_coded(
                g,
                &tree,
                &degs,
                tree_model,
                plan,
                policy,
                JustesenCodec::<RelMsg>::new(),
                sink,
            )?;
            stats.absorb_codec(cstats);
            stats.retransmits += cost.retransmits;
            stats.failures += cost.failures;
            pipeline_round += cost.rounds;
            agg_bits += cost.bits as u64;
            check_collect(cost.failures, self.k, pipeline_round)?;
            sum_deg = sums[tree.root];
        }
        {
            let (sums, cost, cstats) = reliable_convergecast_sums_coded(
                g,
                &tree,
                &deg_sqs,
                tree_model,
                plan,
                policy,
                JustesenCodec::<RelMsg>::new(),
                sink,
            )?;
            stats.absorb_codec(cstats);
            stats.retransmits += cost.retransmits;
            stats.failures += cost.failures;
            pipeline_round += cost.rounds;
            agg_bits += cost.bits as u64;
            check_collect(cost.failures, self.k, pipeline_round)?;
            sum_deg_sq = sums[tree.root];
        }

        // Phase 3: the coded walk phase. Retry-free — losses surface in
        // the conservation check, never in a skewed statistic.
        let walk_codec = JustesenCodec::<WalkMsg>::new();
        let walk_model = walk::walk_coded_bandwidth_model(self.k, walk_codec.output_bits());
        let (outcome, walk_stats) = run_walks_coded(
            g,
            seed,
            self.walks_per_node,
            self.walk_len,
            walk_model,
            plan,
            walk_codec,
            options,
            sink,
        )?;
        stats.absorb_codec(walk_stats);
        self.check_conservation(&outcome, pipeline_round)?;
        pipeline_round += outcome.rounds;

        // Phase 4: reliable collision convergecast.
        let collision_values: Vec<u64> = outcome
            .counts
            .iter()
            .map(|row| row.iter().map(|&c| c * c.saturating_sub(1) / 2).sum())
            .collect();
        let collisions;
        {
            let (sums, cost, cstats) = reliable_convergecast_sums_coded(
                g,
                &tree,
                &collision_values,
                tree_model,
                plan,
                policy,
                JustesenCodec::<RelMsg>::new(),
                sink,
            )?;
            stats.absorb_codec(cstats);
            stats.retransmits += cost.retransmits;
            stats.failures += cost.failures;
            pipeline_round += cost.rounds;
            agg_bits += cost.bits as u64;
            check_collect(cost.failures, self.k, pipeline_round)?;
            collisions = sums[tree.root];
        }

        // Phase 5: decide; reliable verdict broadcast.
        let accept = accepts(collisions, self.k, self.walks_per_node, sum_deg, sum_deg_sq);
        let (_, cost_bcast, bstats) = reliable_broadcast_value_coded(
            g,
            &tree,
            u64::from(accept),
            tree_model,
            plan,
            policy,
            JustesenCodec::<RelMsg>::new(),
            sink,
        )?;
        stats.absorb_codec(bstats);
        stats.retransmits += cost_bcast.retransmits;
        stats.failures += cost_bcast.failures;
        pipeline_round += cost_bcast.rounds;
        agg_bits += cost_bcast.bits as u64;

        let result = self.assemble(
            accept,
            collisions,
            pipeline_round,
            &outcome,
            agg_bits + outcome.bits,
            leader,
            &tree,
            sum_deg,
            sum_deg_sq,
        );
        record(sink, &result, true);
        if sink.enabled() {
            sink.add(keys::CONGEST_ECC_CORRECTED_BITS, stats.corrected_bits);
            sink.add(keys::CONGEST_ECC_DECODE_FAILURES, stats.decode_failures);
            sink.add(keys::CONGEST_ROBUST_RETRANSMITS, stats.retransmits);
            sink.add(keys::CONGEST_ROBUST_FAILURES, stats.failures);
        }
        Ok((result, stats))
    }

    /// The per-edge budget of the tree phases. The largest aggregate on
    /// the wire is a partial sum of either `Σ deg²` (≤ k³) or collision
    /// counts (≤ C(k·ℓ, 2) < (k·ℓ)²), so `2·bitlen(max(k³, (k·ℓ)²))` =
    /// O(log k + log ℓ) bits per edge — the same Θ(log n) envelope as
    /// [`BandwidthModel::congest_for`], with the doubling as slack for
    /// the protocols' control fields.
    fn aggregation_model(&self) -> BandwidthModel {
        let k = self.k as u128;
        let kl = k * u128::from(self.walks_per_node);
        let bound = (k * k * k).max(kl * kl);
        let bits = 2 * (128 - bound.leading_zeros()) as usize;
        BandwidthModel::Congest {
            bits_per_edge: bits.max(2),
        }
    }

    fn check_conservation(
        &self,
        outcome: &WalkOutcome,
        pipeline_round: usize,
    ) -> Result<(), ConductanceError> {
        let expected = self.k as u64 * self.walks_per_node;
        let observed = outcome.total_tokens();
        if observed != expected {
            return Err(ConductanceError::FaultOverwhelmed {
                stage: ConductanceStage::Walk,
                round: pipeline_round + outcome.rounds,
                expected,
                observed: observed.min(expected),
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        accept: bool,
        collisions: u64,
        rounds: usize,
        outcome: &WalkOutcome,
        bits: u64,
        leader: NodeId,
        tree: &BfsTree,
        sum_deg: u64,
        sum_deg_sq: u64,
    ) -> ConductanceRunResult {
        let pairs = self.walks_per_node * (self.walks_per_node - 1) / 2;
        let two_m = sum_deg as f64;
        let threshold = if two_m > 0.0 {
            1.5 * self.k as f64 * pairs as f64 * sum_deg_sq as f64 / (two_m * two_m)
        } else {
            0.0
        };
        ConductanceRunResult {
            verdict: if accept {
                ConductanceVerdict::Expander
            } else {
                ConductanceVerdict::FarFromExpander
            },
            collisions,
            threshold,
            rounds,
            walk_rounds: outcome.rounds,
            bits,
            max_edge_bits: outcome.max_edge_bits,
            tokens: outcome.total_tokens(),
            leader,
            tree_height: tree.height,
            sum_deg,
            sum_deg_sq,
        }
    }
}

/// The root's decision rule in exact integer arithmetic:
/// accept iff `S ≤ 1.5·k·C(ℓ,2)·Σdeg²/(2m)²`, cross-multiplied so no
/// float ever enters the verdict.
fn accepts(collisions: u64, k: usize, walks_per_node: u64, sum_deg: u64, sum_deg_sq: u64) -> bool {
    let pairs = u128::from(walks_per_node) * u128::from(walks_per_node - 1) / 2;
    let lhs = 2 * u128::from(collisions) * u128::from(sum_deg) * u128::from(sum_deg);
    let rhs = 3 * (k as u128) * pairs * u128::from(sum_deg_sq);
    lhs <= rhs
}

fn degree_values<T: ImplicitTopology>(g: &T) -> Vec<u64> {
    let mut buf = Vec::new();
    (0..g.node_count())
        .map(|v| g.neighbors(v, &mut buf).len() as u64)
        .collect()
}

fn check_collect(failures: u64, k: usize, round: usize) -> Result<(), ConductanceError> {
    if failures > 0 {
        let expected = (k - 1) as u64;
        return Err(ConductanceError::FaultOverwhelmed {
            stage: ConductanceStage::Collect,
            round,
            expected,
            observed: expected.saturating_sub(failures),
        });
    }
    Ok(())
}

fn record(sink: &mut dyn Sink, result: &ConductanceRunResult, robust: bool) {
    if !sink.enabled() {
        return;
    }
    sink.add(keys::CONGEST_CONDUCTANCE_RUNS, 1);
    if robust {
        sink.add(keys::CONGEST_CONDUCTANCE_ROBUST_RUNS, 1);
    }
    sink.add(keys::CONGEST_CONDUCTANCE_ROUNDS, result.rounds as u64);
    sink.add(
        keys::CONGEST_CONDUCTANCE_WALK_ROUNDS,
        result.walk_rounds as u64,
    );
    sink.add(keys::CONGEST_CONDUCTANCE_BITS, result.bits);
    sink.add(keys::CONGEST_CONDUCTANCE_TOKENS, result.tokens);
    sink.add(keys::CONGEST_CONDUCTANCE_COLLISIONS, result.collisions);
    sink.add(
        keys::CONGEST_CONDUCTANCE_ACCEPTS,
        u64::from(result.verdict.accepts()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_netsim::topology::{bridged_cliques, complete, MargulisExpander};

    #[test]
    fn plan_rejects_bad_parameters() {
        assert_eq!(
            ConductanceTester::plan(1, 0.1, 0.5),
            Err(ConductancePlanError::TooFewNodes { k: 1 })
        );
        assert!(matches!(
            ConductanceTester::plan(8, 0.0, 0.5),
            Err(ConductancePlanError::BadPhi { .. })
        ));
        assert!(matches!(
            ConductanceTester::plan(8, 1.5, 0.5),
            Err(ConductancePlanError::BadPhi { .. })
        ));
        assert!(matches!(
            ConductanceTester::plan(8, 0.1, 0.0),
            Err(ConductancePlanError::BadEpsilon { .. })
        ));
        assert!(matches!(
            ConductanceTester::plan(8, 0.1, 3.0),
            Err(ConductancePlanError::BadEpsilon { .. })
        ));
        let t = ConductanceTester::plan(8, 0.1, 0.5).unwrap();
        assert!(matches!(
            t.with_walks(1),
            Err(ConductancePlanError::TooFewWalks { walks: 1 })
        ));
    }

    #[test]
    fn plan_heuristics_scale_as_documented() {
        let t = ConductanceTester::plan(64, 0.05, 0.5).unwrap();
        assert_eq!(t.walks_per_node, 24); // ceil(12 / 0.5)
        assert_eq!(t.walk_len, 84); // ceil(ln 64 / 0.05)
        let loose = ConductanceTester::plan(4, 0.9, 2.0).unwrap();
        assert_eq!(loose.walks_per_node, 8); // floor of the max()
        assert_eq!(loose.walk_len, 4);
    }

    #[test]
    fn integer_decision_rule_matches_float_threshold() {
        // S = 100, k = 10, l = 5 (pairs = 10), sum_deg = 40,
        // sum_deg_sq = 180: threshold = 1.5*10*10*180/1600 = 16.875.
        assert!(!accepts(100, 10, 5, 40, 180));
        assert!(accepts(16, 10, 5, 40, 180));
        // Exactly at the threshold accepts (<=): 2*S*1600 == 3*10*10*180
        // when S = 54000/3200 = 16.875 -- not integral, so probe the
        // boundary on a cleaner instance: k=2, l=2 (pairs 1),
        // sum_deg=2, sum_deg_sq=2 -> accept iff 8*S <= 12, S <= 1.
        assert!(accepts(1, 2, 2, 2, 2));
        assert!(!accepts(2, 2, 2, 2, 2));
    }

    #[test]
    fn accepts_margulis_expander() {
        let g = MargulisExpander::new(6).materialize();
        let t = ConductanceTester::plan(36, 0.1, 0.5).unwrap();
        let r = t.run(&g, 0xE16).unwrap();
        assert!(r.verdict.accepts(), "expander rejected: {r:?}");
        assert_eq!(r.tokens, 36 * t.walks_per_node);
        assert!((r.collisions as f64) < r.threshold);
        assert!(r.rounds as f64 <= 1.5 * t.round_bound(r.tree_height));
    }

    #[test]
    fn rejects_bridged_cliques() {
        let g = bridged_cliques(36);
        let t = ConductanceTester::plan(36, 0.1, 0.5).unwrap();
        let r = t.run(&g, 0xE16).unwrap();
        assert!(!r.verdict.accepts(), "far instance accepted: {r:?}");
        assert!((r.collisions as f64) > r.threshold);
    }

    #[test]
    fn accepts_complete_graph() {
        // The best-conductance graph there is.
        let g = complete(24);
        let t = ConductanceTester::plan(24, 0.2, 0.5).unwrap();
        let r = t.run(&g, 7).unwrap();
        assert!(r.verdict.accepts(), "clique rejected: {r:?}");
    }

    #[test]
    fn verdict_is_seed_stable_across_nearby_seeds() {
        let exp = MargulisExpander::new(6).materialize();
        let far = bridged_cliques(36);
        let t = ConductanceTester::plan(36, 0.1, 0.5).unwrap();
        for seed in 0..8u64 {
            assert!(t.run(&exp, seed).unwrap().verdict.accepts(), "seed {seed}");
            assert!(!t.run(&far, seed).unwrap().verdict.accepts(), "seed {seed}");
        }
    }

    #[test]
    fn robust_fault_free_matches_plain() {
        let g = MargulisExpander::new(6).materialize();
        let t = ConductanceTester::plan(36, 0.1, 0.5).unwrap();
        let plain = t.run(&g, 3).unwrap();
        let (robust, stats) = t.run_robust(&g, 3, &FaultPlan::none(), 3).unwrap();
        assert_eq!(robust.verdict, plain.verdict);
        assert_eq!(robust.collisions, plain.collisions);
        assert_eq!(robust.tokens, plain.tokens);
        assert_eq!(robust.sum_deg, plain.sum_deg);
        assert_eq!(robust.sum_deg_sq, plain.sum_deg_sq);
        assert_eq!(stats.decode_failures, 0);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn walk_phase_drops_surface_as_typed_error() {
        let g = bridged_cliques(16);
        let t = ConductanceTester::plan(16, 0.1, 0.5).unwrap();
        // A heavy drop plan on the plain pipeline: tokens vanish, and
        // the conservation check must refuse to produce a verdict.
        let plan = FaultPlan::seeded(11).with_drops(0.05);
        let opts = RunOptions::default().with_faults(plan);
        let err = t
            .run_observed(&g, 5, &opts, &mut NoopSink)
            .expect_err("token loss must not yield a verdict");
        match err {
            ConductanceError::FaultOverwhelmed {
                stage,
                expected,
                observed,
                ..
            } => {
                assert_eq!(stage, ConductanceStage::Walk);
                assert_eq!(expected, 16 * t.walks_per_node);
                assert!(observed < expected);
            }
            other => panic!("wrong error: {other}"),
        }
        let msg = format!(
            "{}",
            ConductanceError::FaultOverwhelmed {
                stage: ConductanceStage::Walk,
                round: 9,
                expected: 4,
                observed: 3,
            }
        );
        assert!(msg.contains("walk stage"), "{msg}");
    }

    #[test]
    fn graph_size_mismatch_panics() {
        let g = complete(8);
        let t = ConductanceTester::plan(9, 0.1, 0.5).unwrap();
        let r = std::panic::catch_unwind(|| t.run(&g, 0));
        assert!(r.is_err());
    }
}
