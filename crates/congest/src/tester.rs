//! The CONGEST uniformity tester (Theorem 1.4).
//!
//! Composition: every node draws its sample(s) → τ-token packaging
//! concentrates them into packages of τ samples → every package is a
//! *virtual node* of the 0-round threshold tester (Theorem 1.2) and
//! votes by running the gap tester on its samples → the vote count is
//! convergecast up the BFS tree → the root compares against the
//! threshold `T` and broadcasts the verdict.
//!
//! Total rounds: `O(D)` for leader/BFS/aggregation plus `O(τ)` for the
//! forwarding pipeline, with `τ = Θ(n/(kε⁴))` — the paper's
//! `O(D + n/(kε⁴))`.

use crate::codec::JustesenCodec;
use crate::packaging::{solve_token_packaging, PackagingError};
use crate::robust::{robust_bandwidth_model, solve_token_packaging_robust, RobustStats};
use dut_core::decision::Decision;
use dut_core::error::PlanError;
use dut_core::gap::GapTester;
use dut_core::params::{plan_threshold, ThresholdPlan, WindowMethod};
use dut_distributions::collision::CollisionScratch;
use dut_distributions::SampleOracle;
use dut_netsim::algorithms::convergecast::{broadcast_value_observed, convergecast_sum_observed};
use dut_netsim::algorithms::{
    reliable_broadcast_value_coded, reliable_convergecast_sums_coded, RelMsg, RetryPolicy,
};
use dut_netsim::engine::BandwidthModel;
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::ImplicitTopology;
use dut_obs::{keys, NoopSink, Sink};
use rand::Rng;

/// A planned CONGEST uniformity tester.
///
/// # Example
///
/// ```rust
/// use dut_congest::CongestUniformityTester;
/// use dut_core::decision::Decision;
/// use dut_distributions::DiscreteDistribution;
/// use dut_netsim::topology;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 1 << 12;
/// let k = 12_000;
/// let tester = CongestUniformityTester::plan(n, k, 1.0, 1.0 / 3.0, 1)?;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = topology::star(k);
/// let uniform = DiscreteDistribution::uniform(n);
/// let result = tester.run(&g, &uniform, &mut rng)?;
/// assert_eq!(result.decision, Decision::Accept);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CongestUniformityTester {
    n: usize,
    k: usize,
    samples_per_node: usize,
    tau: usize,
    virtual_plan: ThresholdPlan,
    package_tester: GapTester,
}

/// Why a CONGEST tester run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// The packaging phase failed (degenerate inputs or protocol error).
    Packaging(PackagingError),
    /// An aggregation phase (convergecast/broadcast) failed.
    Engine(dut_netsim::engine::EngineError),
}

impl std::fmt::Display for CongestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CongestError::Packaging(e) => write!(f, "congest tester: {e}"),
            CongestError::Engine(e) => write!(f, "congest tester aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for CongestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CongestError::Packaging(e) => Some(e),
            CongestError::Engine(e) => Some(e),
        }
    }
}

impl From<PackagingError> for CongestError {
    fn from(e: PackagingError) -> Self {
        CongestError::Packaging(e)
    }
}

impl From<dut_netsim::engine::EngineError> for CongestError {
    fn from(e: dut_netsim::engine::EngineError) -> Self {
        CongestError::Engine(e)
    }
}

/// The outcome of one CONGEST tester run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestRunResult {
    /// The network's verdict (as broadcast from the root).
    pub decision: Decision,
    /// Virtual nodes (packages) that voted to reject.
    pub rejecting_packages: usize,
    /// Number of packages formed.
    pub packages: usize,
    /// Total protocol rounds (packaging + aggregation + broadcast).
    pub rounds: usize,
    /// Total bits sent across all phases: packaging *plus* the
    /// convergecast of the vote count and the verdict broadcast.
    pub bits: usize,
    /// The rejection threshold used.
    pub threshold: usize,
}

impl CongestUniformityTester {
    /// Plans the tester: finds the smallest package size τ such that
    /// `ℓ = ⌊k·s/τ⌋` packages of τ samples support the threshold tester
    /// at distance `epsilon` and error `p` on domain size `n`.
    /// `samples_per_node` is the `s` in "each node starts with s
    /// samples" (the paper's exposition takes s = 1).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NetworkTooSmall`] (or another planning
    /// failure) when no τ works — the network as a whole does not hold
    /// enough samples.
    pub fn plan(
        n: usize,
        k: usize,
        epsilon: f64,
        p: f64,
        samples_per_node: usize,
    ) -> Result<Self, PlanError> {
        if samples_per_node == 0 {
            return Err(PlanError::InvalidParameter {
                name: "samples_per_node",
                value: 0.0,
                expected: "at least one sample per node",
            });
        }
        let total = k * samples_per_node;
        let mut tau = 2usize;
        let mut best: Option<(usize, ThresholdPlan)> = None;
        while tau <= total {
            let ell = total / tau;
            if ell < 2 {
                break;
            }
            if let Ok(plan) = plan_threshold(n, ell, epsilon, p, WindowMethod::Exact) {
                if plan.samples_per_node <= tau {
                    best = Some((tau, plan));
                    break; // smallest tau wins (fewest pipeline rounds)
                }
            }
            // τ grows geometrically with a fine step: the feasibility
            // frontier is where √(n·τ/k)/ε² ≤ τ.
            tau = (tau + 1).max(tau * 21 / 20);
        }
        let (tau, virtual_plan) = best.ok_or(PlanError::NetworkTooSmall {
            k,
            required: ((n as f64).sqrt() / epsilon.powi(2)).ceil() as usize,
        })?;
        let package_tester = GapTester::with_samples(n, virtual_plan.samples_per_node)?;
        Ok(CongestUniformityTester {
            n,
            k,
            samples_per_node,
            tau,
            virtual_plan,
            package_tester,
        })
    }

    /// The package size τ.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The threshold plan applied to the virtual nodes.
    pub fn virtual_plan(&self) -> &ThresholdPlan {
        &self.virtual_plan
    }

    /// Samples each physical node draws.
    pub fn samples_per_node(&self) -> usize {
        self.samples_per_node
    }

    /// The paper's round bound, `D + n/(kε⁴)` with Θ-constants 1, for
    /// reporting theory curves next to measurements.
    pub fn theory_rounds(&self, diameter: usize, epsilon: f64) -> f64 {
        diameter as f64 + self.n as f64 / (self.k as f64 * epsilon.powi(4))
    }

    /// Each node draws its samples (tokens) and a random id from a
    /// poly(k) namespace (k² — O(log k) bits, fitting the CONGEST
    /// budget); the maximum id is unique with probability 1 − O(1/k),
    /// and we redraw otherwise.
    fn draw_inputs<O, R>(&self, oracle: &O, rng: &mut R) -> (Vec<Vec<u64>>, Vec<u64>)
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let tokens: Vec<Vec<u64>> = (0..self.k)
            .map(|_| {
                oracle
                    .draw_many(rng, self.samples_per_node)
                    .into_iter()
                    .map(|x| x as u64)
                    .collect()
            })
            .collect();
        let namespace = (self.k as u64).saturating_mul(self.k as u64).max(2);
        let ids = loop {
            let ids: Vec<u64> = (0..self.k).map(|_| rng.gen_range(0..namespace)).collect();
            // Unreachable expect: `plan` rejects k = 0 networks
            // (NetworkTooSmall), so `ids` is never empty here.
            let max = *ids.iter().max().expect("non-empty network");
            if ids.iter().filter(|&&i| i == max).count() == 1 {
                break ids;
            }
        };
        (tokens, ids)
    }

    /// Runs the full protocol on `g` with samples drawn from `oracle`.
    ///
    /// `g` must have exactly `k` nodes (the planned network size).
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::Packaging`] when the packaging phase
    /// fails (disconnected or empty graphs included) and
    /// [`CongestError::Engine`] when an aggregation phase does.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`.
    pub fn run<T, O, R>(
        &self,
        g: &T,
        oracle: &O,
        rng: &mut R,
    ) -> Result<CongestRunResult, CongestError>
    where
        T: ImplicitTopology,
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_observed(g, oracle, rng, &mut NoopSink)
    }

    /// [`CongestUniformityTester::run`] recording `congest.*` metrics
    /// into `sink` (run/round/bit totals, packages formed, rejecting
    /// packages — the Theorem 1.4 cost profile); the convergecast and
    /// broadcast phases record their `netsim.*` detail as well. Sinks
    /// never touch the RNG, so observed runs make the same decisions as
    /// [`CongestUniformityTester::run`] on the same RNG state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CongestUniformityTester::run`].
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`.
    pub fn run_observed<T, O, R>(
        &self,
        g: &T,
        oracle: &O,
        rng: &mut R,
        sink: &mut dyn Sink,
    ) -> Result<CongestRunResult, CongestError>
    where
        T: ImplicitTopology,
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(
            g.node_count(),
            self.k,
            "graph size does not match planned network size"
        );
        let (tokens, ids) = self.draw_inputs(oracle, rng);
        let model = BandwidthModel::congest_for(self.n.max(self.k));

        // Phase 1-4: token packaging.
        let packaging = solve_token_packaging(g, &tokens, &ids, self.tau, model)?;

        // Phase 5: every package votes (0 rounds — local computation).
        // One collision scratch and sample buffer serve all packages.
        let mut votes = vec![0u64; self.k];
        let mut rejecting = 0usize;
        let mut collision = CollisionScratch::with_domain(self.n);
        let mut samples: Vec<usize> = Vec::new();
        for (owner, package) in &packaging.packages {
            samples.clear();
            samples.extend(package.iter().map(|&t| t as usize));
            if self
                .package_tester
                .run_on_samples_with(&samples, &mut collision)
                == Decision::Reject
            {
                votes[*owner] += 1;
                rejecting += 1;
            }
        }

        // Phase 6: convergecast the vote count to the root.
        let (total_votes, conv_cost) =
            convergecast_sum_observed(g, &packaging.tree, &votes, model, sink)?;
        debug_assert_eq!(total_votes as usize, rejecting);

        // Phase 7: root decides and broadcasts the verdict.
        let decision = if (total_votes as usize) >= self.virtual_plan.threshold {
            Decision::Reject
        } else {
            Decision::Accept
        };
        let verdict_bit = u64::from(decision == Decision::Reject);
        let (received, bcast_cost) =
            broadcast_value_observed(g, &packaging.tree, verdict_bit, model, sink)?;
        debug_assert!(received.iter().all(|&v| v == verdict_bit));

        let result = CongestRunResult {
            decision,
            rejecting_packages: rejecting,
            packages: packaging.packages.len(),
            rounds: packaging.rounds + conv_cost.rounds + bcast_cost.rounds,
            bits: packaging.bits + conv_cost.bits + bcast_cost.bits,
            threshold: self.virtual_plan.threshold,
        };
        if sink.enabled() {
            sink.add(keys::CONGEST_RUNS, 1);
            sink.add(keys::CONGEST_ROUNDS, result.rounds as u64);
            sink.add(keys::CONGEST_BITS, result.bits as u64);
            sink.add(keys::CONGEST_PACKAGES, result.packages as u64);
            sink.add(
                keys::CONGEST_REJECTING_PACKAGES,
                result.rejecting_packages as u64,
            );
        }
        Ok(result)
    }

    /// Runs the fault-hardened protocol under a [`FaultPlan`]: every
    /// message is Justesen-encoded (flips below the code's certified
    /// radius corrected transparently), packaging runs the robust
    /// pipeline, and the vote aggregation and verdict broadcast go over
    /// the ack/retry tree primitives. `max_retries` bounds per-message
    /// retransmissions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CongestUniformityTester::run`], plus
    /// [`PackagingError::FaultOverwhelmed`] (wrapped in
    /// [`CongestError::Packaging`]) when faults exceed the retry budget.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`.
    pub fn run_robust<T, O, R>(
        &self,
        g: &T,
        oracle: &O,
        rng: &mut R,
        plan: &FaultPlan,
        max_retries: usize,
    ) -> Result<RobustRunResult, CongestError>
    where
        T: ImplicitTopology,
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_robust_observed(g, oracle, rng, plan, max_retries, &mut NoopSink)
    }

    /// [`CongestUniformityTester::run_robust`] recording the
    /// `congest.robust.*` and `congest.ecc.*` metrics into `sink` on
    /// top of the fault-free profile.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CongestUniformityTester::run_robust`].
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`.
    pub fn run_robust_observed<T, O, R>(
        &self,
        g: &T,
        oracle: &O,
        rng: &mut R,
        plan: &FaultPlan,
        max_retries: usize,
        sink: &mut dyn Sink,
    ) -> Result<RobustRunResult, CongestError>
    where
        T: ImplicitTopology,
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(
            g.node_count(),
            self.k,
            "graph size does not match planned network size"
        );
        let (tokens, ids) = self.draw_inputs(oracle, rng);
        // The budget must hold one codeword per edge per round; token
        // values and ids still fit inside the codewords' payload.
        let model = robust_bandwidth_model();

        // Phase 1-4: robust token packaging.
        let (packaging, mut stats) = solve_token_packaging_robust(
            g,
            &tokens,
            &ids,
            self.tau,
            model,
            plan,
            max_retries,
            sink,
        )?;

        // Phase 5: every package votes (0 rounds — local computation).
        let mut votes = vec![0u64; self.k];
        let mut rejecting = 0usize;
        let mut collision = CollisionScratch::with_domain(self.n);
        let mut samples: Vec<usize> = Vec::new();
        for (owner, package) in &packaging.packages {
            samples.clear();
            samples.extend(package.iter().map(|&t| t as usize));
            if self
                .package_tester
                .run_on_samples_with(&samples, &mut collision)
                == Decision::Reject
            {
                votes[*owner] += 1;
                rejecting += 1;
            }
        }

        // Phase 6: reliable convergecast of the vote count. The root's
        // subtree sum is the network total; ARQ failures mean some
        // subtree's votes were lost for good and the verdict is on a
        // partial count — surfaced in `stats.failures`, not hidden.
        let policy = RetryPolicy::for_tree(&packaging.tree, max_retries);
        let (sums, conv_cost, conv_stats) = reliable_convergecast_sums_coded(
            g,
            &packaging.tree,
            &votes,
            model,
            plan,
            policy,
            JustesenCodec::<RelMsg>::new(),
            sink,
        )?;
        stats.absorb_codec(conv_stats);
        stats.retransmits += conv_cost.retransmits;
        stats.failures += conv_cost.failures;
        let total_votes = sums[packaging.tree.root];

        // Phase 7: root decides; reliable broadcast of the verdict.
        let decision = if (total_votes as usize) >= self.virtual_plan.threshold {
            Decision::Reject
        } else {
            Decision::Accept
        };
        let verdict_bit = u64::from(decision == Decision::Reject);
        let (received, bcast_cost, bcast_stats) = reliable_broadcast_value_coded(
            g,
            &packaging.tree,
            verdict_bit,
            model,
            plan,
            policy,
            JustesenCodec::<RelMsg>::new(),
            sink,
        )?;
        stats.absorb_codec(bcast_stats);
        stats.retransmits += bcast_cost.retransmits;
        stats.failures += bcast_cost.failures;
        let informed_nodes = received.iter().filter(|v| v.is_some()).count();

        let result = RobustRunResult {
            run: CongestRunResult {
                decision,
                rejecting_packages: rejecting,
                packages: packaging.packages.len(),
                rounds: packaging.rounds + conv_cost.rounds + bcast_cost.rounds,
                bits: packaging.bits + conv_cost.bits + bcast_cost.bits,
                threshold: self.virtual_plan.threshold,
            },
            stats,
            informed_nodes,
        };
        if sink.enabled() {
            sink.add(keys::CONGEST_ROBUST_RUNS, 1);
            sink.add(keys::CONGEST_ECC_CORRECTED_BITS, stats.corrected_bits);
            sink.add(keys::CONGEST_ECC_DECODE_FAILURES, stats.decode_failures);
            sink.add(keys::CONGEST_ROBUST_RETRANSMITS, stats.retransmits);
            sink.add(keys::CONGEST_ROBUST_FAILURES, stats.failures);
        }
        Ok(result)
    }
}

/// The outcome of one fault-hardened CONGEST tester run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobustRunResult {
    /// The protocol outcome (decision, packages, round/bit totals).
    pub run: CongestRunResult,
    /// Fault-handling totals: corrected bits, decode failures, ARQ
    /// retransmissions and permanent delivery failures. With
    /// `stats.failures > 0` the decision was taken on a partial vote
    /// count.
    pub stats: RobustStats,
    /// Nodes that learned the verdict (all `k` unless the broadcast
    /// exhausted its retries somewhere).
    pub informed_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use dut_netsim::graph::Graph;
    use dut_netsim::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 1 << 12;
    const K: usize = 12_000;
    const EPS: f64 = 1.0;

    #[test]
    fn plan_produces_consistent_parameters() {
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        assert!(t.tau() >= t.virtual_plan().samples_per_node);
        assert!(t.tau() * t.virtual_plan().k <= K + t.tau());
    }

    #[test]
    fn plan_fails_when_network_has_too_few_samples() {
        // k samples total << √n needed.
        let err = CongestUniformityTester::plan(1 << 20, 100, 0.5, 1.0 / 3.0, 1).unwrap_err();
        assert!(matches!(
            err,
            PlanError::NetworkTooSmall { .. } | PlanError::Infeasible { .. }
        ));
    }

    #[test]
    fn accepts_uniform_on_star() {
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::star(K);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 12;
        let errors = (0..trials)
            .filter(|_| t.run(&g, &uniform, &mut rng).unwrap().decision == Decision::Reject)
            .count();
        assert!(errors <= trials / 3 + 1, "false alarms {errors}/{trials}");
    }

    #[test]
    fn rejects_far_on_star() {
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::star(K);
        let far = paninski_far(N, EPS).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 12;
        let errors = (0..trials)
            .filter(|_| t.run(&g, &far, &mut rng).unwrap().decision == Decision::Accept)
            .count();
        assert!(
            errors <= trials / 3 + 1,
            "missed detections {errors}/{trials}"
        );
    }

    #[test]
    fn works_on_tree_topology() {
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::balanced_binary_tree(K);
        let far = paninski_far(N, EPS).unwrap();
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 12;
        let far_rejects = (0..trials)
            .filter(|_| t.run(&g, &far, &mut rng).unwrap().decision == Decision::Reject)
            .count();
        let uni_rejects = (0..trials)
            .filter(|_| t.run(&g, &uniform, &mut rng).unwrap().decision == Decision::Reject)
            .count();
        // The plan's predicted per-run errors sit just under 1/3, so the
        // counts are noisy at a dozen trials; require clear separation
        // plus loose absolute bounds.
        assert!(
            far_rejects > uni_rejects,
            "no separation: far {far_rejects} vs uniform {uni_rejects}"
        );
        assert!(
            far_rejects >= trials / 2,
            "far rejects {far_rejects}/{trials}"
        );
        assert!(
            uni_rejects <= trials / 2,
            "uniform rejects {uni_rejects}/{trials}"
        );
    }

    #[test]
    fn rounds_track_d_plus_tau() {
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::star(K);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(4);
        let r = t.run(&g, &uniform, &mut rng).unwrap();
        let d = 2.0; // star diameter
        let bound = 8.0 * (d + t.tau() as f64) + 30.0;
        assert!(
            (r.rounds as f64) < bound,
            "rounds {} exceed O(D + tau) bound {bound}",
            r.rounds
        );
    }

    #[test]
    fn congest_budget_respected_end_to_end() {
        // The run uses BandwidthModel::congest_for internally and the
        // engine errors on violations — success implies compliance.
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::grid(100, 120);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(5);
        let r = t.run(&g, &uniform, &mut rng).unwrap();
        assert!(r.packages > 0);
    }

    #[test]
    fn observed_run_matches_and_accounts_all_phases() {
        use dut_obs::{keys, MemorySink};
        let t = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let g = topology::star(K);
        let uniform = DiscreteDistribution::uniform(N);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let plain = t.run(&g, &uniform, &mut r1).unwrap();
        let mut sink = MemorySink::new();
        let observed = t.run_observed(&g, &uniform, &mut r2, &mut sink).unwrap();

        // Observation must not perturb the protocol.
        assert_eq!(plain.decision, observed.decision);
        assert_eq!(plain.rounds, observed.rounds);
        assert_eq!(plain.bits, observed.bits);
        assert_eq!(plain.rejecting_packages, observed.rejecting_packages);

        assert_eq!(sink.counter(keys::CONGEST_RUNS), 1);
        assert_eq!(sink.counter(keys::CONGEST_ROUNDS), observed.rounds as u64);
        assert_eq!(sink.counter(keys::CONGEST_BITS), observed.bits as u64);
        assert_eq!(
            sink.counter(keys::CONGEST_PACKAGES),
            observed.packages as u64
        );
        assert_eq!(
            sink.counter(keys::CONGEST_REJECTING_PACKAGES),
            observed.rejecting_packages as u64
        );
        // The aggregation phases put real bits on the wire, and the
        // total accounts for them on top of packaging.
        let aggregation =
            sink.counter(keys::CONVERGECAST_BITS) + sink.counter(keys::BROADCAST_BITS);
        assert!(aggregation > 0, "convergecast/broadcast bits not recorded");
        assert!(
            observed.bits as u64 > aggregation,
            "total bits must include packaging on top of aggregation"
        );
    }

    /// A deliberately small plan: robust runs Justesen-decode every
    /// message, which is far heavier per message than the plain path,
    /// so the fault tests stay at a few hundred nodes.
    fn small_plan() -> (CongestUniformityTester, Graph) {
        let t = CongestUniformityTester::plan(2048, 250, 1.0, 1.0 / 3.0, 32).unwrap();
        (t, topology::grid(10, 25))
    }

    #[test]
    fn runs_over_implicit_topologies_match_materialized() {
        use dut_netsim::topology::Torus2d;
        let (t, _) = small_plan();
        let torus = Torus2d::new(10, 25); // 250 nodes, never materialized
        let g = torus.materialize();
        let uniform = DiscreteDistribution::uniform(2048);

        let mut r1 = StdRng::seed_from_u64(21);
        let mut r2 = StdRng::seed_from_u64(21);
        let mat = t.run(&g, &uniform, &mut r1).unwrap();
        let imp = t.run(&torus, &uniform, &mut r2).unwrap();
        assert_eq!(mat, imp, "plain pipeline diverges on the implicit torus");

        // Outcome equality (Ok or typed Err alike): the robust pipeline
        // must make the identical decision stream on both views.
        let plan = FaultPlan::seeded(0x1D05).with_drops(0.02).with_flips(0.001);
        let mut r1 = StdRng::seed_from_u64(22);
        let mut r2 = StdRng::seed_from_u64(22);
        let mat = t.run_robust(&g, &uniform, &mut r1, &plan, 6);
        let imp = t.run_robust(&torus, &uniform, &mut r2, &plan, 6);
        assert_eq!(
            mat, imp,
            "robust pipeline diverges on the implicit torus under faults"
        );

        // And a gentle plan that succeeds outright on both.
        let plan = FaultPlan::seeded(0x1D06).with_flips(0.0005);
        let mut r1 = StdRng::seed_from_u64(23);
        let mut r2 = StdRng::seed_from_u64(23);
        let mat = t.run_robust(&g, &uniform, &mut r1, &plan, 8).unwrap();
        let imp = t.run_robust(&torus, &uniform, &mut r2, &plan, 8).unwrap();
        assert_eq!(mat, imp);
    }

    #[test]
    fn robust_fault_free_run_matches_plain() {
        let (t, g) = small_plan();
        let uniform = DiscreteDistribution::uniform(2048);
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let plain = t.run(&g, &uniform, &mut r1).unwrap();
        let robust = t
            .run_robust(&g, &uniform, &mut r2, &FaultPlan::none(), 4)
            .unwrap();
        // Same RNG seed → same tokens and ids; without faults the
        // hardened pipeline must reproduce the plain protocol exactly.
        assert_eq!(robust.run.decision, plain.decision);
        assert_eq!(robust.run.rejecting_packages, plain.rejecting_packages);
        assert_eq!(robust.run.packages, plain.packages);
        assert_eq!(robust.stats, RobustStats::default());
        assert_eq!(robust.informed_nodes, g.node_count());
    }

    #[test]
    fn robust_run_corrects_flips_and_records_metrics() {
        use dut_obs::{keys, MemorySink};
        let (t, g) = small_plan();
        let uniform = DiscreteDistribution::uniform(2048);
        let mut r1 = StdRng::seed_from_u64(13);
        let mut r2 = StdRng::seed_from_u64(13);
        let clean = t
            .run_robust(&g, &uniform, &mut r1, &FaultPlan::none(), 4)
            .unwrap();
        let plan = FaultPlan::seeded(0xF1A6).with_flips(2e-4);
        let mut sink = MemorySink::new();
        let faulted = t
            .run_robust_observed(&g, &uniform, &mut r2, &plan, 4, &mut sink)
            .unwrap();
        // Flips stay far below the per-word correction radius at this
        // rate, so the codec absorbs them all and nothing downstream
        // can tell the difference.
        assert_eq!(faulted.run.decision, clean.run.decision);
        assert_eq!(faulted.run.rejecting_packages, clean.run.rejecting_packages);
        assert_eq!(faulted.run.packages, clean.run.packages);
        assert!(faulted.stats.corrected_bits > 0, "plan must flip bits");
        assert_eq!(faulted.stats.decode_failures, 0);
        assert_eq!(faulted.stats.failures, 0);
        assert_eq!(faulted.informed_nodes, g.node_count());

        assert_eq!(sink.counter(keys::CONGEST_ROBUST_RUNS), 1);
        assert_eq!(
            sink.counter(keys::CONGEST_ECC_CORRECTED_BITS),
            faulted.stats.corrected_bits
        );
        assert_eq!(sink.counter(keys::CONGEST_ECC_DECODE_FAILURES), 0);
        assert_eq!(sink.counter(keys::CONGEST_ROBUST_FAILURES), 0);
    }

    #[test]
    fn robust_run_survives_drops_via_retries() {
        let (t, g) = small_plan();
        let uniform = DiscreteDistribution::uniform(2048);
        let mut r1 = StdRng::seed_from_u64(17);
        let mut r2 = StdRng::seed_from_u64(17);
        let clean = t
            .run_robust(&g, &uniform, &mut r1, &FaultPlan::none(), 8)
            .unwrap();
        // Fault seed chosen so no drop lands in the retry-free
        // forwarding phase but several hit the reliable phases, which
        // recover by retransmission. A dropped BFS announcement can
        // reshape the tree — and with it package composition and
        // votes — but success still certifies exact Definition-2
        // packaging: the same ⌊total/τ⌋ packages form.
        let plan = FaultPlan::seeded(2).with_drops(0.002);
        let faulted = t.run_robust(&g, &uniform, &mut r2, &plan, 8).unwrap();
        assert_eq!(faulted.run.packages, clean.run.packages);
        assert_eq!(faulted.stats.failures, 0);
        assert!(
            faulted.stats.retransmits > 0,
            "drops must force at least one retransmission"
        );
        assert_eq!(faulted.informed_nodes, g.node_count());
    }

    #[test]
    fn robust_run_drops_err_typed_rather_than_mispackage() {
        // The unprotected forwarding phase loses tokens under this fault
        // seed; the token-conservation check must surface it as a typed
        // error — short packages or a panic are both bugs.
        let (t, g) = small_plan();
        let uniform = DiscreteDistribution::uniform(2048);
        let mut rng = StdRng::seed_from_u64(17);
        let plan = FaultPlan::seeded(0).with_drops(0.002);
        let err = t.run_robust(&g, &uniform, &mut rng, &plan, 8).unwrap_err();
        match err {
            CongestError::Packaging(
                PackagingError::FaultOverwhelmed { .. } | PackagingError::Engine(_),
            ) => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn multiple_samples_per_node_reduce_tau_need() {
        // With s=4 the same k supports testing at smaller epsilon or,
        // here, the same epsilon with more packages.
        let t1 = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 1).unwrap();
        let t4 = CongestUniformityTester::plan(N, K, EPS, 1.0 / 3.0, 4).unwrap();
        let g = topology::star(K);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(6);
        let r1 = t1.run(&g, &uniform, &mut rng).unwrap();
        let r4 = t4.run(&g, &uniform, &mut rng).unwrap();
        assert!(r4.packages > r1.packages);
    }
}
