//! Uniformity testing in the CONGEST model (§5 of the paper).
//!
//! The paper's CONGEST tester (Theorem 1.4) runs in
//! `O(D + n/(kε⁴))` rounds by *concentrating* samples: the network
//! solves the τ-token-packaging problem (Definition 2) to gather the
//! scattered samples into "packages" of exactly τ samples each, treats
//! every package as a **virtual node** of the 0-round threshold tester
//! (Theorem 1.2), and then aggregates the virtual nodes' votes up a BFS
//! tree against the threshold `T`.
//!
//! * [`packaging`] — the τ-token-packaging protocol (Theorem 5.1):
//!   leader election → BFS tree → bottom-up residue computation
//!   `c(v) = (tokens(v) + Σ c(child)) mod τ` → τ rounds of pipelined
//!   token forwarding. `O(D + τ)` rounds, `O(log n)` bits per edge per
//!   round (enforced by the simulator).
//! * [`tester`] — the full CONGEST uniformity tester: planning (choosing
//!   τ so the packages support the threshold tester), the protocol
//!   composition, and round/bit accounting.
//! * [`conductance`] — a second property-testing workload on the same
//!   substrate: the Fichtenberger–Vasudev distributed conductance
//!   tester (lazy random walks + collision convergecast), plain and
//!   fault-hardened.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod conductance;
pub mod packaging;
pub mod robust;
pub mod tester;

pub use codec::{CodedWord, JustesenCodec};
pub use conductance::{
    ConductanceError, ConductanceRunResult, ConductanceStage, ConductanceTester, ConductanceVerdict,
};
pub use packaging::{solve_token_packaging, PackagingError, PackagingResult, RobustStage};
pub use robust::{robust_bandwidth_model, solve_token_packaging_robust, RobustStats};
pub use tester::{CongestError, CongestRunResult, CongestUniformityTester, RobustRunResult};
