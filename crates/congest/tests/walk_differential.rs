//! Property-based coverage for the walk primitive itself: the token
//! census must be invariant under engine choice and thread count on
//! arbitrary topologies and fault plans, and the lazy walk's
//! stationary distribution on a clique must be uniform within Wilson
//! bounds.

use dut_congest::conductance::walk::{
    run_walks_observed, run_walks_reference_faulted, walk_bandwidth_model,
};
use dut_core::montecarlo::ErrorEstimate;
use dut_netsim::engine::RunOptions;
use dut_netsim::topology::complete;
use dut_obs::NoopSink;
use dut_testkit::strategies::{fault_plan, topology_graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn walk_census_is_engine_and_thread_invariant(
        g in topology_graph(2, 24),
        plan in fault_plan(24, 12, 0.05, 0.002),
        seed in any::<u64>(),
        walks in 2u64..8,
        walk_len in 1usize..10,
    ) {
        let k = g.node_count();
        let model = walk_bandwidth_model(k, walks);
        let serial = run_walks_observed(
            &g,
            seed,
            walks,
            walk_len,
            model,
            &RunOptions::default().with_faults(plan.clone()),
            &mut NoopSink,
        ).unwrap();
        for threads in [2usize, 5] {
            let parallel = run_walks_observed(
                &g,
                seed,
                walks,
                walk_len,
                model,
                &RunOptions::parallel(threads)
                    .with_shard_delivery(1)
                    .with_faults(plan.clone()),
                &mut NoopSink,
            ).unwrap();
            prop_assert_eq!(&serial, &parallel, "diverged at {} threads", threads);
        }
        let reference =
            run_walks_reference_faulted(&g, seed, walks, walk_len, model, &plan).unwrap();
        prop_assert_eq!(&serial.counts, &reference.counts);
        prop_assert_eq!(serial.rounds, reference.rounds);
        prop_assert_eq!(serial.dropped_messages, reference.dropped_messages);
        prop_assert_eq!(serial.flipped_bits, reference.flipped_bits);
        // The multiset is conserved per source on fault-free plans.
        if plan.drop_prob == 0.0 && plan.flip_prob == 0.0 && plan.crashes.is_empty() {
            prop_assert_eq!(serial.total_tokens(), k as u64 * walks);
        }
    }
}

#[test]
fn lazy_walk_on_clique_is_uniform_within_wilson_bounds() {
    // On K16 the lazy walk's stationary distribution is uniform, and
    // the clique mixes in O(1) rounds — after 16 rounds every token is
    // (essentially) a fresh uniform draw. Pool the endpoint censuses
    // of many seeds and check each node's share of tokens against a
    // z = 3.5 Wilson interval around 1/k.
    let k = 16usize;
    let walks = 8u64;
    let g = complete(k);
    let model = walk_bandwidth_model(k, walks);
    let mut per_node = vec![0u64; k];
    let mut total = 0u64;
    for seed in 0..40u64 {
        let outcome = run_walks_observed(
            &g,
            0x5EED ^ (seed * 0x9E37_79B9),
            walks,
            16,
            model,
            &RunOptions::default(),
            &mut NoopSink,
        )
        .expect("clean run");
        assert_eq!(outcome.total_tokens(), k as u64 * walks);
        for (v, row) in outcome.counts.iter().enumerate() {
            let here: u64 = row.iter().sum();
            per_node[v] += here;
            total += here;
        }
    }
    let uniform = 1.0 / k as f64;
    for (v, &count) in per_node.iter().enumerate() {
        let est = ErrorEstimate::from_counts(total as usize, count as usize, 3.5);
        assert!(
            est.lower <= uniform && uniform <= est.upper,
            "node {v}: share {:.4} outside Wilson [{:.4}, {:.4}] around 1/k = {:.4}",
            est.rate,
            est.lower,
            est.upper,
            uniform
        );
    }
}

#[test]
fn walk_words_are_decorrelated_across_coordinates() {
    // The counter-keyed stream must not repeat across neighboring
    // coordinates (a cheap sanity net against keying bugs that would
    // silently correlate token trajectories).
    use dut_congest::conductance::walk::walk_word;
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for round in 0..8u64 {
        for node in 0..8u64 {
            for src in 0..8u64 {
                for slot in 0..4u64 {
                    assert!(seen.insert(walk_word(7, round, node, src, slot)));
                }
            }
        }
    }
    assert_eq!(seen.len(), 8 * 8 * 8 * 4);
}
