//! Serial ↔ parallel differential suite for the CONGEST tester (CI's
//! testkit lane): the full packaging + convergecast + broadcast
//! protocol run inside Monte-Carlo trials must produce bit-identical
//! estimates and merged round/bit metrics at any thread count.

use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_core::montecarlo::trial_rng;
use dut_distributions::families::paninski_far;
use dut_netsim::topology;
use dut_testkit::parallel::assert_thread_invariant_observed;

#[test]
fn congest_tester_is_thread_invariant_observed() {
    let n = 1 << 12;
    let k = 12_000;
    let tester = CongestUniformityTester::plan(n, k, 1.0, 1.0 / 3.0, 1).expect("plannable");
    let g = topology::star(k);
    let far = paninski_far(n, 1.0).expect("valid family");
    let trials = 24;
    let (est, sink) = assert_thread_invariant_observed(
        trials,
        2026,
        || (),
        |seed, (), sink| {
            let mut rng = trial_rng(seed);
            tester
                .run_observed(&g, &far, &mut rng, sink)
                .expect("protocol completes")
                .decision
                == Decision::Reject
        },
    );
    // Far input at ε=1: the network must reject at least sometimes,
    // and every trial must have metered its rounds and bits.
    assert!(est.rate > 0.0, "far input never rejected: {est:?}");
    assert_eq!(sink.counter(dut_obs::keys::CONGEST_RUNS) as usize, trials);
    assert!(sink.counter(dut_obs::keys::CONGEST_ROUNDS) > 0);
    assert!(sink.counter(dut_obs::keys::CONGEST_BITS) > 0);
}
