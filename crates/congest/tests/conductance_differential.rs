//! Differential suite for the conductance tester (CI's `conductance`
//! lane): the full pipeline and the walk phase alone must be
//! bit-identical across the serial engine, the sharded parallel engine
//! at any thread count, and the naive reference engine — clean and
//! under E13-style fault plans — and the robust variant must keep its
//! honesty contract (flips absorbed, losses typed, never a skewed
//! verdict).

use dut_congest::conductance::walk::{
    run_walks_observed, run_walks_reference, run_walks_reference_faulted, walk_bandwidth_model,
};
use dut_congest::{ConductanceError, ConductanceStage, ConductanceTester};
use dut_netsim::engine::RunOptions;
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::ImplicitTopology;
use dut_netsim::topology::{bridged_cliques, MargulisExpander};
use dut_obs::NoopSink;

const SEED: u64 = 0xC0DA;

fn e13_style_plan() -> FaultPlan {
    // Flip-only at the E13 sweep's light rate: the coded pipeline must
    // absorb every flip below the Justesen radius.
    FaultPlan::seeded(0xE13).with_flips(3e-4)
}

#[test]
fn full_pipeline_is_engine_invariant() {
    let g = MargulisExpander::new(6).materialize();
    let t = ConductanceTester::plan(36, 0.1, 0.5).expect("plannable");
    let serial = t
        .run_observed(&g, SEED, &RunOptions::default(), &mut NoopSink)
        .expect("serial run");
    for options in [
        RunOptions::parallel(2),
        RunOptions::parallel(4),
        RunOptions::parallel(3).with_shard_delivery(1),
    ] {
        let other = t
            .run_observed(&g, SEED, &options, &mut NoopSink)
            .expect("parallel run");
        assert_eq!(serial, other, "diverged under {options:?}");
    }
}

#[test]
fn walk_census_matches_reference_clean_and_faulted() {
    let g = bridged_cliques(24);
    let model = walk_bandwidth_model(24, 8);
    let plans = [
        FaultPlan::none(),
        FaultPlan::seeded(5).with_flips(2e-3),
        FaultPlan::seeded(6).with_drops(0.01),
        FaultPlan::seeded(7)
            .with_drops(0.005)
            .with_flips(1e-3)
            .with_crash(3, 6)
            .with_rejoin(3, 11),
    ];
    for plan in plans {
        let opts = RunOptions::default().with_faults(plan.clone());
        let flat =
            run_walks_observed(&g, SEED, 8, 16, model, &opts, &mut NoopSink).expect("flat engine");
        let sharded = run_walks_observed(
            &g,
            SEED,
            8,
            16,
            model,
            &RunOptions::parallel(4)
                .with_shard_delivery(1)
                .with_faults(plan.clone()),
            &mut NoopSink,
        )
        .expect("sharded engine");
        let reference =
            run_walks_reference_faulted(&g, SEED, 8, 16, model, &plan).expect("reference engine");
        assert_eq!(flat, sharded, "flat vs sharded under {plan:?}");
        assert_eq!(
            flat.counts, reference.counts,
            "flat vs reference under {plan:?}"
        );
        assert_eq!(flat.rounds, reference.rounds);
        assert_eq!(flat.dropped_messages, reference.dropped_messages);
    }
}

#[test]
fn clean_walks_conserve_tokens_exactly() {
    let g = MargulisExpander::new(5).materialize();
    let model = walk_bandwidth_model(25, 6);
    let outcome = run_walks_reference(&g.clone(), SEED, 6, 12, model).expect("reference run");
    assert_eq!(outcome.total_tokens(), 25 * 6);
    // Every source keeps its 6 tokens somewhere.
    for src in 0..25 {
        let alive: u64 = outcome.counts.iter().map(|row| row[src]).sum();
        assert_eq!(alive, 6, "source {src}");
    }
}

#[test]
fn robust_pipeline_absorbs_e13_flip_plan_bit_identically() {
    let g = MargulisExpander::new(6).materialize();
    let t = ConductanceTester::plan(36, 0.1, 0.5).expect("plannable");
    let (clean, _) = t
        .run_robust(&g, SEED, &FaultPlan::none(), 3)
        .expect("fault-free robust run");
    let (faulted, stats) = t
        .run_robust(&g, SEED, &e13_style_plan(), 3)
        .expect("flips below the codec radius must be absorbed");
    assert_eq!(clean.verdict, faulted.verdict);
    assert_eq!(clean.collisions, faulted.collisions);
    assert_eq!(clean.tokens, faulted.tokens);
    assert_eq!(clean.sum_deg, faulted.sum_deg);
    assert_eq!(clean.sum_deg_sq, faulted.sum_deg_sq);
    assert!(stats.corrected_bits > 0, "plan never flipped anything");
    assert_eq!(stats.failures, 0);
}

#[test]
fn robust_pipeline_is_engine_invariant_under_faults() {
    let g = MargulisExpander::new(4).materialize();
    let t = ConductanceTester::plan(16, 0.1, 0.5)
        .expect("plannable")
        .with_walk_len(10);
    let plan = e13_style_plan();
    let (serial, _) = t
        .run_robust_observed(&g, SEED, &plan, 3, &RunOptions::default(), &mut NoopSink)
        .expect("serial robust run");
    let (parallel, _) = t
        .run_robust_observed(&g, SEED, &plan, 3, &RunOptions::parallel(4), &mut NoopSink)
        .expect("parallel robust run");
    assert_eq!(serial, parallel);
}

#[test]
fn robust_pipeline_survives_crash_rejoin_in_collect_phase() {
    // Fault-plan rounds are local to each engine sub-run. On line(8)
    // the BFS tree is a depth-7 chain, so the bottom-up reliable
    // collect keeps node 6 (the last hop before the root) busy well
    // past round 4 — the crash window [4, 12) lands inside the ARQ
    // chain and the outage-widened deadlines absorb it. A walk_len=2
    // walk quiesces before round 4, so no tokens are in flight when
    // the node goes dark: the verdict and statistic must match the
    // fault-free run exactly.
    let g = dut_netsim::topology::line(8);
    let t = ConductanceTester::plan(8, 0.1, 0.5)
        .expect("plannable")
        .with_walk_len(2);
    let (clean, _) = t
        .run_robust(&g, SEED, &FaultPlan::none(), 4)
        .expect("fault-free robust run");
    let plan = FaultPlan::seeded(0x2E16)
        .with_crash(6, 4)
        .with_rejoin(6, 12);
    let (survived, stats) = t
        .run_robust(&g, SEED, &plan, 4)
        .expect("outage-widened retries must absorb the crash window");
    assert_eq!(clean.verdict, survived.verdict);
    assert_eq!(clean.collisions, survived.collisions);
    assert_eq!(clean.tokens, survived.tokens);
    assert!(
        stats.retransmits > 0,
        "crash window never forced a retransmit: {stats:?}"
    );
}

#[test]
fn robust_pipeline_reports_walk_losses_as_typed_error() {
    let g = bridged_cliques(16);
    let t = ConductanceTester::plan(16, 0.1, 0.5).expect("plannable");
    // Heavy drops: the retry-free walk phase must lose tokens, and the
    // conservation check must refuse to manufacture a verdict.
    let plan = FaultPlan::seeded(21).with_drops(0.05);
    match t.run_robust(&g, SEED, &plan, 3) {
        Err(ConductanceError::FaultOverwhelmed { stage, .. }) => {
            assert_eq!(stage, ConductanceStage::Walk);
        }
        other => panic!("expected FaultOverwhelmed(Walk), got {other:?}"),
    }
}

#[test]
fn observed_runs_record_conductance_metrics() {
    use dut_obs::{keys, MemorySink};
    let g = MargulisExpander::new(4).materialize();
    let t = ConductanceTester::plan(16, 0.1, 0.5).expect("plannable");
    let mut sink = MemorySink::new();
    let r = t
        .run_observed(&g, SEED, &RunOptions::default(), &mut sink)
        .expect("observed run");
    assert_eq!(sink.counter(keys::CONGEST_CONDUCTANCE_RUNS), 1);
    assert_eq!(sink.counter(keys::CONGEST_CONDUCTANCE_ROBUST_RUNS), 0);
    assert_eq!(
        sink.counter(keys::CONGEST_CONDUCTANCE_ROUNDS),
        r.rounds as u64
    );
    assert_eq!(sink.counter(keys::CONGEST_CONDUCTANCE_TOKENS), r.tokens);
    assert_eq!(
        sink.counter(keys::CONGEST_CONDUCTANCE_ACCEPTS),
        u64::from(r.verdict.accepts())
    );
    let (rr, _) = t
        .run_robust_observed(
            &g,
            SEED,
            &FaultPlan::none(),
            3,
            &RunOptions::default(),
            &mut sink,
        )
        .expect("robust observed run");
    assert_eq!(sink.counter(keys::CONGEST_CONDUCTANCE_RUNS), 2);
    assert_eq!(sink.counter(keys::CONGEST_CONDUCTANCE_ROBUST_RUNS), 1);
    assert_eq!(rr.verdict, r.verdict);
    // Sinks never touch RNG: the observed runs must equal unobserved.
    let plain = t.run(&g, SEED).expect("unobserved run");
    assert_eq!(plain, r);
}
