//! Property-based tests for token packaging (Definition 2).

use dut_congest::solve_token_packaging;
use dut_netsim::engine::BandwidthModel;
use dut_netsim::topology::connected_erdos_renyi;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn definition_2_holds_on_random_graphs(
        k in 4usize..60,
        p in 0.05f64..0.5,
        tau in 1usize..15,
        tokens_per_node in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = connected_erdos_renyi(k, p, &mut rng);
        // Unique token values to check the at-most-one-package property.
        let mut next = 0u64;
        let tokens: Vec<Vec<u64>> = (0..k)
            .map(|_| (0..tokens_per_node).map(|_| { next += 1; next }).collect())
            .collect();
        let ids: Vec<u64> = {
            let mut ids: Vec<u64> = (0..k as u64).collect();
            for i in (1..k).rev() {
                let j = rand::Rng::gen_range(&mut rng, 0..=i);
                ids.swap(i, j);
            }
            ids
        };
        let total = k * tokens_per_node;
        let result =
            solve_token_packaging(&g, &tokens, &ids, tau, BandwidthModel::Local).unwrap();

        // (1) every package has size exactly tau
        for (_, pkg) in &result.packages {
            prop_assert_eq!(pkg.len(), tau);
        }
        // (2) each token in at most one package
        let mut seen = HashSet::new();
        for (_, pkg) in &result.packages {
            for &t in pkg {
                prop_assert!(seen.insert(t), "token {t} duplicated");
            }
        }
        // (3) at most tau-1 tokens unpackaged (all discarded at root)
        let packaged = result.packages.len() * tau;
        prop_assert!(total - packaged < tau);
        prop_assert_eq!(result.discarded, total - packaged);

        // Theorem 5.1 shape: rounds O(D + tau) with our phase constants.
        let d = g.diameter();
        prop_assert!(
            result.rounds <= 8 * (d + tau) + 40,
            "rounds {} not O(D + tau) with D={d}, tau={tau}",
            result.rounds
        );
    }
}
