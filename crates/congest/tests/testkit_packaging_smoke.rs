//! Seeded fault-plan fuzz smoke for token packaging, using the shared
//! driver from `dut-testkit`. The larger sweep lives in
//! `crates/testkit/tests/fuzz_drivers.rs`; this lane keeps a fast
//! regression signal inside the crate that owns the protocol.

use dut_testkit::fuzz::fuzz_token_packaging;

#[test]
fn token_packaging_fault_smoke() {
    fuzz_token_packaging(0xC09E_5701, 120).assert_contract();
}
