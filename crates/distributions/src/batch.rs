//! Batched (lane-oriented) random generation for the sampling hot
//! loops.
//!
//! The Monte-Carlo inner loops draw millions of `u64`s one call at a
//! time. [`BatchRng`] is a counter-based splitmix64 generator whose
//! output `i` is a pure finalizer over `state + (i+1)·φ` — there is no
//! loop-carried dependency between lanes, so [`BatchRng::fill`] is a
//! straight-line loop LLVM autovectorizes (no `unsafe`, no
//! intrinsics). The serial [`rand::RngCore`] implementation walks the
//! **same** stream, so `fill(&mut buf)` is bit-identical to calling
//! `next_u64()` `buf.len()` times — batching is a pure reordering of
//! work, never of randomness.
//!
//! Batch consumers ([`AliasTable::sample_batch`] and the
//! [`DiscreteDistribution`] uniform fast path) process draws in blocks
//! of [`LANES`]; the constant is exported so callers can size stack
//! buffers to the same width.
//!
//! `BatchRng` is **not** the default trial generator — the executor's
//! documented streams use `StdRng` (xoshiro256++). The `fast-sampling`
//! cargo feature swaps `BatchRng` into the trial hot path
//! (`dut_core::montecarlo::sampling_rng`), which changes the RNG
//! stream; that split's contract is *verdict* identity, enforced by
//! the testkit differential suite, not bit identity.
//!
//! [`AliasTable::sample_batch`]: crate::DiscreteDistribution::sample_batch
//! [`DiscreteDistribution`]: crate::DiscreteDistribution

use rand::{RngCore, SeedableRng};

/// Lane width of the batched kernels: draws are produced and consumed
/// in blocks of this many samples. 16 × u64 fills two AVX2 (or one
/// AVX-512) register group per vectorized mix step while keeping the
/// per-block stack scratch (`[u64; 2·LANES]`) trivially small.
pub const LANES: usize = 16;

/// The splitmix64 increment (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a pure bijective mix of one counter word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based splitmix64 generator with a vectorizable batch
/// fill. See the module docs for the stream contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRng {
    state: u64,
}

impl BatchRng {
    /// A generator seeded at `seed`; the stream is the classic
    /// splitmix64 sequence `mix(seed + i·φ)` for `i = 1, 2, ...`.
    pub fn new(seed: u64) -> Self {
        BatchRng { state: seed }
    }

    /// Fills `out` with the next `out.len()` outputs of the stream —
    /// bit-identical to that many [`RngCore::next_u64`] calls, but as
    /// an autovectorizable loop: each lane is `mix(base + (j+1)·φ)`,
    /// independent of every other lane.
    #[inline]
    pub fn fill(&mut self, out: &mut [u64]) {
        let base = self.state;
        for (j, o) in out.iter_mut().enumerate() {
            *o = mix(base.wrapping_add(GOLDEN.wrapping_mul(j as u64 + 1)));
        }
        self.state = base.wrapping_add(GOLDEN.wrapping_mul(out.len() as u64));
    }
}

impl RngCore for BatchRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

impl SeedableRng for BatchRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        BatchRng::new(u64::from_le_bytes(seed))
    }

    /// Uses `state` directly (the counter construction already *is*
    /// splitmix64 expansion, so re-expanding would mix twice).
    fn seed_from_u64(state: u64) -> Self {
        BatchRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fill_is_bit_identical_to_serial_draws() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut serial = BatchRng::new(seed);
            let expect: Vec<u64> = (0..100).map(|_| serial.next_u64()).collect();
            let mut batched = BatchRng::new(seed);
            let mut got = vec![0u64; 100];
            // Uneven block sizes: the stream must not depend on how
            // the fill calls are split.
            let (a, rest) = got.split_at_mut(7);
            let (b, c) = rest.split_at_mut(64);
            batched.fill(a);
            batched.fill(b);
            batched.fill(c);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn empty_fill_is_a_no_op() {
        let mut rng = BatchRng::new(9);
        let before = rng.clone();
        rng.fill(&mut []);
        assert_eq!(rng, before);
        assert_eq!(rng.next_u64(), before.clone().next_u64());
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = BatchRng::new(3);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = BatchRng::new(3);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = BatchRng::new(4);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = BatchRng::new(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = BatchRng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn seed_from_u64_matches_new() {
        let mut a = BatchRng::seed_from_u64(77);
        let mut b = BatchRng::new(77);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
