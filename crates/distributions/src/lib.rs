//! Discrete distribution toolkit for distributed uniformity testing.
//!
//! This crate provides the probability-theoretic substrate used throughout
//! the reproduction of *Distributed Uniformity Testing* (Fischer, Meir,
//! Oshman; PODC 2018):
//!
//! * [`DiscreteDistribution`] — an exact probability mass function over the
//!   domain `{0, .., n-1}` with O(1) sampling via the Walker alias method.
//! * [`families`] — the extremal "ε-far from uniform" distribution families
//!   used to exercise uniformity testers (Paninski pair perturbation,
//!   two-level heavy sets, point-mass mixtures, bucketed step
//!   distributions).
//! * [`distance`] — L1 / L2 / total-variation distances and distance to the
//!   uniform distribution.
//! * [`collision`] — collision probability χ(μ) = Σ μ(x)², Lemma 3.2 of the
//!   paper, and the Wiener birthday bound (the paper's Lemma 3.3).
//! * [`counts`] — per-symbol occupancy counts, the shared state behind
//!   the mergeable streaming sketches in `dut-stream`.
//! * [`info`] — Shannon entropy, collision (Rényi-2) entropy, KL
//!   divergence, and the Bernoulli-KL lower bound of the paper's Lemma 2.1.
//! * [`oracle`] — sample oracles: the interface testers use to draw iid
//!   samples.
//! * [`batch`] — the counter-based [`batch::BatchRng`] generator and the
//!   [`batch::LANES`] block width behind the batched sampling kernels
//!   ([`DiscreteDistribution::sample_batch`]).
//!
//! # Example
//!
//! ```rust
//! use dut_distributions::{DiscreteDistribution, families};
//! use dut_distributions::collision::collision_probability;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! # fn main() -> Result<(), dut_distributions::DistributionError> {
//! let n = 1024;
//! let uniform = DiscreteDistribution::uniform(n);
//! let far = families::paninski_far(n, 0.5)?;
//!
//! // The Paninski family meets Lemma 3.2 with equality:
//! let chi = collision_probability(&far);
//! assert!((chi - (1.0 + 0.25) / n as f64).abs() < 1e-12);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let samples = far.sample_many(&mut rng, 100);
//! assert_eq!(samples.len(), 100);
//! # let _ = uniform;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod collision;
pub mod counts;
pub mod distance;
pub mod error;
pub mod exact;
pub mod families;
pub mod histogram;
pub mod info;
pub mod oracle;
pub mod quantized;

mod alias;
mod dist;

pub use dist::DiscreteDistribution;
pub use error::DistributionError;
pub use oracle::{DistributionOracle, SampleOracle};
