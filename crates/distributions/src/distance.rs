//! Distances between discrete distributions.
//!
//! The paper measures "far from uniform" in L1 distance:
//! `‖μ − U‖₁ = Σ_x |μ(x) − 1/n|`. Total variation distance is half the L1
//! distance. L2 distance appears in the analysis of collision statistics
//! (`‖μ‖₂² = χ(μ)`).

use crate::dist::DiscreteDistribution;
use crate::error::DistributionError;

/// L1 distance `Σ_x |μ(x) − η(x)|` between two distributions on the same
/// domain.
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] if the domain sizes
/// differ.
pub fn l1_distance(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    if mu.domain_size() != eta.domain_size() {
        return Err(DistributionError::IncompatibleDomain {
            n: eta.domain_size(),
            reason: "distance requires equal domain sizes",
        });
    }
    Ok(mu
        .pmf_slice()
        .iter()
        .zip(eta.pmf_slice())
        .map(|(&a, &b)| (a - b).abs())
        .sum())
}

/// L1 distance from `mu` to the uniform distribution on its domain.
pub fn l1_to_uniform(mu: &DiscreteDistribution) -> f64 {
    let n = mu.domain_size() as f64;
    let base = 1.0 / n;
    mu.pmf_slice().iter().map(|&p| (p - base).abs()).sum()
}

/// Total variation distance: half the L1 distance.
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] if the domain sizes
/// differ.
pub fn total_variation(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    Ok(l1_distance(mu, eta)? / 2.0)
}

/// Squared L2 distance `Σ_x (μ(x) − η(x))²`.
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] if the domain sizes
/// differ.
pub fn l2_squared(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    if mu.domain_size() != eta.domain_size() {
        return Err(DistributionError::IncompatibleDomain {
            n: eta.domain_size(),
            reason: "distance requires equal domain sizes",
        });
    }
    Ok(mu
        .pmf_slice()
        .iter()
        .zip(eta.pmf_slice())
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum())
}

/// Squared L2 distance from uniform. Satisfies
/// `l2_squared_to_uniform(μ) = χ(μ) − 1/n`, connecting L2 distance to the
/// collision probability (see [`crate::collision`]).
pub fn l2_squared_to_uniform(mu: &DiscreteDistribution) -> f64 {
    let n = mu.domain_size() as f64;
    let base = 1.0 / n;
    mu.pmf_slice()
        .iter()
        .map(|&p| (p - base) * (p - base))
        .sum()
}

/// χ²-divergence `χ²(μ ‖ η) = Σ_x (μ(x) − η(x))²/η(x)` — the distance
/// modern uniformity-testing analyses optimize (against the uniform
/// reference it equals `n·‖μ − U‖₂² = n·χ(μ) − 1`).
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] on domain mismatch,
/// and [`DistributionError::InvalidParameter`] if `η` has a zero where
/// `μ` has mass (the divergence would be infinite).
pub fn chi_square_divergence(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    if mu.domain_size() != eta.domain_size() {
        return Err(DistributionError::IncompatibleDomain {
            n: eta.domain_size(),
            reason: "divergence requires equal domain sizes",
        });
    }
    let mut d = 0.0;
    for (x, (&p, &q)) in mu.pmf_slice().iter().zip(eta.pmf_slice()).enumerate() {
        if q <= 0.0 {
            if p > 0.0 {
                return Err(DistributionError::InvalidParameter {
                    name: "eta",
                    value: x as f64,
                    expected: "eta must dominate mu (absolute continuity)",
                });
            }
            continue;
        }
        d += (p - q) * (p - q) / q;
    }
    Ok(d)
}

/// Squared Hellinger distance
/// `H²(μ, η) = ½ Σ_x (√μ(x) − √η(x))²` — always in `[0, 1]`, and
/// sandwiched by total variation: `H² ≤ d_TV ≤ H·√(2 − H²)`.
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] on domain mismatch.
pub fn hellinger_squared(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    if mu.domain_size() != eta.domain_size() {
        return Err(DistributionError::IncompatibleDomain {
            n: eta.domain_size(),
            reason: "distance requires equal domain sizes",
        });
    }
    let d: f64 = mu
        .pmf_slice()
        .iter()
        .zip(eta.pmf_slice())
        .map(|(&a, &b)| {
            let t = a.sqrt() - b.sqrt();
            t * t
        })
        .sum();
    Ok((d / 2.0).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::collision_probability;
    use crate::families::paninski_far;

    #[test]
    fn l1_distance_to_self_is_zero() {
        let d = DiscreteDistribution::uniform(16);
        assert_eq!(l1_distance(&d, &d).unwrap(), 0.0);
    }

    #[test]
    fn l1_distance_is_symmetric() {
        let a = DiscreteDistribution::from_pmf(vec![0.7, 0.3]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![0.2, 0.8]).unwrap();
        assert_eq!(l1_distance(&a, &b).unwrap(), l1_distance(&b, &a).unwrap());
    }

    #[test]
    fn l1_distance_max_is_two() {
        let a = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![0.0, 1.0]).unwrap();
        assert!((l1_distance(&a, &b).unwrap() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn l1_rejects_mismatched_domains() {
        let a = DiscreteDistribution::uniform(2);
        let b = DiscreteDistribution::uniform(3);
        assert!(l1_distance(&a, &b).is_err());
        assert!(l2_squared(&a, &b).is_err());
    }

    #[test]
    fn tv_is_half_l1() {
        let a = DiscreteDistribution::from_pmf(vec![0.9, 0.1]).unwrap();
        let b = DiscreteDistribution::uniform(2);
        let l1 = l1_distance(&a, &b).unwrap();
        let tv = total_variation(&a, &b).unwrap();
        assert!((tv - l1 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn l1_to_uniform_matches_generic() {
        let d = paninski_far(64, 0.5).unwrap();
        let u = DiscreteDistribution::uniform(64);
        assert!((l1_to_uniform(&d) - l1_distance(&d, &u).unwrap()).abs() < 1e-15);
    }

    #[test]
    fn l2_to_uniform_equals_chi_minus_one_over_n() {
        let d = paninski_far(128, 0.5).unwrap();
        let n = 128.0;
        let lhs = l2_squared_to_uniform(&d);
        let rhs = collision_probability(&d) - 1.0 / n;
        assert!((lhs - rhs).abs() < 1e-15);
    }

    #[test]
    fn l1_to_uniform_of_uniform_is_zero() {
        let u = DiscreteDistribution::uniform(100);
        assert!(l1_to_uniform(&u) < 1e-12);
    }

    #[test]
    fn chi_square_to_uniform_is_n_chi_minus_one() {
        let d = paninski_far(256, 0.5).unwrap();
        let u = DiscreteDistribution::uniform(256);
        let cs = chi_square_divergence(&d, &u).unwrap();
        let via_collision = 256.0 * collision_probability(&d) - 1.0;
        assert!((cs - via_collision).abs() < 1e-10);
        // Paninski at ε: χ² = ε² exactly.
        assert!((cs - 0.25).abs() < 1e-10);
    }

    #[test]
    fn chi_square_zero_iff_equal() {
        let d = paninski_far(64, 0.3).unwrap();
        assert!(chi_square_divergence(&d, &d).unwrap().abs() < 1e-12);
    }

    #[test]
    fn chi_square_detects_domination_failure() {
        let a = DiscreteDistribution::from_pmf(vec![0.5, 0.5]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        assert!(chi_square_divergence(&a, &b).is_err());
        assert!(chi_square_divergence(&b, &a).is_ok());
    }

    #[test]
    fn hellinger_bounds_and_sandwich() {
        let cases = [
            (
                paninski_far(64, 0.5).unwrap(),
                DiscreteDistribution::uniform(64),
            ),
            (
                DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap(),
                DiscreteDistribution::from_pmf(vec![0.0, 1.0]).unwrap(),
            ),
        ];
        for (a, b) in cases {
            let h2 = hellinger_squared(&a, &b).unwrap();
            let tv = total_variation(&a, &b).unwrap();
            assert!((0.0..=1.0).contains(&h2));
            // H² ≤ TV ≤ H√(2−H²)
            assert!(h2 <= tv + 1e-12, "H² {h2} > TV {tv}");
            let upper = h2.sqrt() * (2.0 - h2).sqrt();
            assert!(tv <= upper + 1e-12, "TV {tv} > H√(2−H²) {upper}");
        }
    }

    #[test]
    fn hellinger_of_disjoint_supports_is_one() {
        let a = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![0.0, 1.0]).unwrap();
        assert!((hellinger_squared(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }
}
