//! Sample oracles: how testers obtain iid samples.
//!
//! Testers in the paper are oblivious to *where* samples come from — they
//! only draw iid samples from an unknown μ. [`SampleOracle`] abstracts
//! that access so the same tester code runs against a concrete
//! distribution, a recorded trace, or a filtered stream (the identity-to-
//! uniformity reduction wraps one oracle in another).

use crate::dist::DiscreteDistribution;
use rand::Rng;

/// A source of iid samples over the domain `{0, .., n-1}`.
///
/// Implementors must return iid samples from a fixed (but possibly
/// unknown to the caller) distribution. The RNG is threaded through
/// explicitly so experiments are reproducible.
pub trait SampleOracle {
    /// The domain size `n` (testers need to know `n`, per the paper's §2).
    fn domain_size(&self) -> usize;

    /// Draws one sample.
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize;

    /// Draws `count` iid samples.
    fn draw_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.draw(rng)).collect()
    }

    /// Draws `count` iid samples, **appending** them to `out`. Same
    /// sample stream as [`SampleOracle::draw_many`], but reuses the
    /// caller's buffer so Monte-Carlo loops allocate nothing per trial.
    fn draw_into<R: Rng + ?Sized>(&self, rng: &mut R, count: usize, out: &mut Vec<usize>) {
        out.reserve(count);
        for _ in 0..count {
            out.push(self.draw(rng));
        }
    }

    /// Whether [`SampleOracle::draw_into`] routes through the batched
    /// ([`crate::batch::LANES`]-wide) sampling kernels. Purely
    /// observational — the sample stream is bit-identical either way —
    /// so instrumentation can record batched-draw counters only where
    /// they are meaningful.
    fn batched(&self) -> bool {
        false
    }
}

/// The basic oracle: samples from an explicit [`DiscreteDistribution`].
#[derive(Debug, Clone)]
pub struct DistributionOracle {
    dist: DiscreteDistribution,
}

impl DistributionOracle {
    /// Wraps a distribution as an oracle.
    pub fn new(dist: DiscreteDistribution) -> Self {
        DistributionOracle { dist }
    }

    /// The underlying distribution.
    pub fn distribution(&self) -> &DiscreteDistribution {
        &self.dist
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> DiscreteDistribution {
        self.dist
    }
}

impl From<DiscreteDistribution> for DistributionOracle {
    fn from(dist: DiscreteDistribution) -> Self {
        DistributionOracle::new(dist)
    }
}

impl SampleOracle for DistributionOracle {
    fn domain_size(&self) -> usize {
        self.dist.domain_size()
    }

    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.dist.sample(rng)
    }

    fn draw_into<R: Rng + ?Sized>(&self, rng: &mut R, count: usize, out: &mut Vec<usize>) {
        self.dist.sample_batch_into(rng, count, out);
    }

    fn batched(&self) -> bool {
        true
    }
}

impl SampleOracle for DiscreteDistribution {
    fn domain_size(&self) -> usize {
        DiscreteDistribution::domain_size(self)
    }

    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng)
    }

    fn draw_into<R: Rng + ?Sized>(&self, rng: &mut R, count: usize, out: &mut Vec<usize>) {
        self.sample_batch_into(rng, count, out);
    }

    fn batched(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_matches_distribution() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0]).unwrap();
        let oracle = DistributionOracle::new(d);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(oracle.domain_size(), 2);
        for _ in 0..50 {
            assert_eq!(oracle.draw(&mut rng), 1);
        }
    }

    #[test]
    fn draw_many_length() {
        let oracle = DistributionOracle::from(DiscreteDistribution::uniform(8));
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(oracle.draw_many(&mut rng, 17).len(), 17);
    }

    #[test]
    fn distribution_is_itself_an_oracle() {
        let d = DiscreteDistribution::uniform(4);
        let mut rng = StdRng::seed_from_u64(3);
        let s = SampleOracle::draw(&d, &mut rng);
        assert!(s < 4);
    }

    #[test]
    fn batched_draw_into_matches_scalar_draws() {
        let d = DiscreteDistribution::from_weights(vec![1.0, 4.0, 2.0, 0.5]).unwrap();
        let oracle = DistributionOracle::new(d);
        assert!(oracle.batched());
        let mut a = StdRng::seed_from_u64(21);
        let mut got = Vec::new();
        oracle.draw_into(&mut a, 53, &mut got);
        let mut b = StdRng::seed_from_u64(21);
        let expect: Vec<usize> = (0..53).map(|_| oracle.draw(&mut b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn into_inner_round_trip() {
        let d = DiscreteDistribution::uniform(5);
        let oracle = DistributionOracle::new(d.clone());
        assert_eq!(oracle.into_inner(), d);
    }
}
