//! Exact collision analytics for paired-perturbation distributions.
//!
//! For the uniform distribution and for the Paninski family (and any
//! distribution built from `n/2` independent probability pairs
//! `(a, b)`), the probability that `s` iid samples are **all distinct**
//! has a closed form via the elementary-symmetric generating function:
//!
//! `Pr[all distinct] = s! · [x^s] Π_pairs (1 + a·x)(1 + b·x)
//!                   = s! · [x^s] (1 + c₁x + c₂x²)^{n/2}`
//!
//! with `c₁ = a + b = 2/n` and `c₂ = a·b = (1 − ε²)/n²`. Extracting the
//! coefficient gives a single well-conditioned sum
//!
//! `Pr = s! Σ_j C(n/2, j) · C(n/2 − j, s − 2j) · c₂^j · c₁^{s−2j}`,
//!
//! evaluated in log space. This makes the rejection probability of the
//! single-collision gap tester *exact* on both the uniform distribution
//! (ε = 0) and the hardest ε-far family — so network-level error
//! predictions in the experiments need no Monte-Carlo at all.

/// Natural log of Γ(x) via the Lanczos approximation (g = 7, n = 9);
/// absolute error below 1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885,
        -1_259.139_216_722_402_8,
        771.323_428_777_653,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π/sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` via [`ln_gamma`]; returns `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Slop allowed when snapping `epsilon` onto the `[0, 1]` endpoints.
///
/// Callers that derive ε from an integer grid — `1/⌈1/ε⌉`-style
/// parameter planning is ubiquitous in the experiment harnesses — can
/// land a few ulps outside the closed interval (e.g. `1.0 + 2e-16`, or
/// `-1e-17` from a subtraction). Those are representation artifacts of
/// a mathematically valid ε, not caller bugs, so they are snapped to
/// the endpoint instead of panicking.
const EPSILON_SNAP: f64 = 1e-9;

/// Exact probability that `s` iid samples from the paired distribution
/// with per-pair masses `((1+ε)/n, (1−ε)/n)` are all distinct.
///
/// `epsilon = 0` gives the uniform distribution on `n` elements;
/// `epsilon > 0` gives the Paninski ε-far family. `n` must be even.
///
/// Degenerate edges are total rather than panics: `s = 0` returns `1`
/// (an empty sample set is vacuously all-distinct), and `epsilon`
/// within `1e-9` of an endpoint of `[0, 1]` is snapped onto
/// it (at `ε = 1` the light element of every pair has zero mass, so the
/// support degenerates to `n/2` elements and `s > n/2` always
/// collides).
///
/// # Panics
///
/// Panics for odd `n`, or `epsilon` outside `[0, 1]` by more than the
/// snap tolerance (including NaN).
pub fn paninski_all_distinct_probability(n: usize, epsilon: f64, s: usize) -> f64 {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "paired family needs an even domain"
    );
    assert!(
        (-EPSILON_SNAP..=1.0 + EPSILON_SNAP).contains(&epsilon),
        "epsilon must be in [0, 1] (within rounding slop), got {epsilon}"
    );
    let epsilon = epsilon.clamp(0.0, 1.0);
    if s == 0 {
        return 1.0;
    }
    if s > n {
        return 0.0;
    }
    let m = (n / 2) as u64; // number of pairs
    let c1 = 2.0 / n as f64;
    // Clamped: after the ε snap this cannot go negative, but keep the
    // guard local so `ln` below never sees a negative argument.
    let c2 = ((1.0 - epsilon * epsilon) / (n as f64 * n as f64)).max(0.0);
    let ln_c1 = c1.ln();
    // c2 = 0 at epsilon = 1: only the j = 0 term survives.
    let ln_c2 = if c2 > 0.0 { c2.ln() } else { f64::NEG_INFINITY };
    let ln_s_fact = ln_gamma(s as f64 + 1.0);

    // log-sum-exp over j = number of pairs contributing both elements.
    let j_max = s / 2;
    let mut terms: Vec<f64> = Vec::with_capacity(j_max + 1);
    for j in 0..=j_max {
        let ju = j as u64;
        let rest = (s - 2 * j) as u64;
        // Avoid 0·(−inf) = NaN when a coefficient vanishes.
        let c2_term = if ju == 0 { 0.0 } else { ju as f64 * ln_c2 };
        let c1_term = if rest == 0 { 0.0 } else { rest as f64 * ln_c1 };
        let t = ln_choose(m, ju) + ln_choose(m - ju, rest) + c2_term + c1_term;
        if t.is_finite() {
            terms.push(t);
        }
    }
    if terms.is_empty() {
        return 0.0;
    }
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = terms.iter().map(|&t| (t - max).exp()).sum();
    ((ln_s_fact + max + sum.ln()).exp()).clamp(0.0, 1.0)
}

/// Exact rejection probability (`Pr[some collision]`) of the
/// single-collision gap tester with `s` samples on the paired family.
///
/// Shares the edge behavior of [`paninski_all_distinct_probability`]:
/// `s = 0` returns `0` (no samples, no collision), and `epsilon` is
/// snapped onto `[0, 1]` within the rounding tolerance.
pub fn paninski_rejection_probability(n: usize, epsilon: f64, s: usize) -> f64 {
    1.0 - paninski_all_distinct_probability(n, epsilon, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::uniform_all_distinct_probability;
    use crate::families::paninski_far;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_matches_direct() {
        assert!((ln_choose(10, 3) - 120.0f64.ln()).abs() < 1e-9);
        assert!((ln_choose(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn epsilon_zero_matches_uniform_product_formula() {
        for &n in &[10usize, 100, 4096] {
            for &s in &[1usize, 2, 5, 20] {
                if s > n {
                    continue;
                }
                let exact = paninski_all_distinct_probability(n, 0.0, s);
                let product = uniform_all_distinct_probability(n, s);
                assert!(
                    (exact - product).abs() < 1e-9,
                    "n={n}, s={s}: {exact} vs {product}"
                );
            }
        }
    }

    #[test]
    fn two_samples_match_collision_probability() {
        // Pr[distinct] for s = 2 is 1 − χ(μ) = 1 − (1+ε²)/n.
        for &eps in &[0.0f64, 0.3, 0.7, 1.0] {
            let n = 1000;
            let exact = paninski_all_distinct_probability(n, eps, 2);
            let expected = 1.0 - (1.0 + eps * eps) / n as f64;
            assert!((exact - expected).abs() < 1e-12, "eps={eps}");
        }
    }

    #[test]
    fn far_distribution_collides_more() {
        let n = 1 << 14;
        let s = 40;
        let p_uniform = paninski_all_distinct_probability(n, 0.0, s);
        let p_far = paninski_all_distinct_probability(n, 0.7, s);
        assert!(p_far < p_uniform, "{p_far} !< {p_uniform}");
    }

    #[test]
    fn monotone_in_samples() {
        let n = 1 << 12;
        let mut prev = 1.0;
        for s in 1..100 {
            let p = paninski_all_distinct_probability(n, 0.5, s);
            assert!(p <= prev + 1e-12, "s={s}");
            prev = p;
        }
    }

    #[test]
    fn matches_monte_carlo() {
        use crate::collision::has_collision;
        let n = 1 << 10;
        let eps = 0.8;
        let s = 30;
        let exact = paninski_rejection_probability(n, eps, s);
        let d = paninski_far(n, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| has_collision(&d.sample_many(&mut rng, s)))
            .count();
        let mc = hits as f64 / trials as f64;
        let sigma = (exact * (1.0 - exact) / trials as f64).sqrt();
        assert!(
            (mc - exact).abs() < 4.0 * sigma + 1e-4,
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn epsilon_one_kills_half_the_domain() {
        // ε = 1: only n/2 elements have mass (each 2/n); s > n/2 must
        // always collide.
        let n = 20;
        assert_eq!(paninski_all_distinct_probability(n, 1.0, 11), 0.0);
        assert!(paninski_all_distinct_probability(n, 1.0, 5) > 0.0);
    }

    #[test]
    fn oversampled_domain_always_collides() {
        assert_eq!(paninski_all_distinct_probability(10, 0.0, 11), 0.0);
    }

    #[test]
    fn zero_samples_are_vacuously_distinct() {
        // The seed code panicked on s = 0; an empty sample set has no
        // collision by definition.
        assert_eq!(paninski_all_distinct_probability(100, 0.5, 0), 1.0);
        assert_eq!(paninski_rejection_probability(100, 0.5, 0), 0.0);
    }

    #[test]
    fn epsilon_endpoint_rounding_is_snapped() {
        // 1/⌈1/ε⌉-style planning can land a few ulps outside [0, 1];
        // the seed code panicked here.
        let over = 1.0 + 1e-12;
        let under = -1e-12;
        assert_eq!(
            paninski_all_distinct_probability(20, over, 5),
            paninski_all_distinct_probability(20, 1.0, 5)
        );
        assert_eq!(
            paninski_all_distinct_probability(20, under, 5),
            paninski_all_distinct_probability(20, 0.0, 5)
        );
        // Snapped ε = 1 keeps the degenerate-support behavior exact.
        assert_eq!(paninski_all_distinct_probability(20, over, 11), 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_far_out_of_range_still_panics() {
        let _ = paninski_all_distinct_probability(20, 1.5, 5);
    }
}
