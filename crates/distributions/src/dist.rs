//! Exact discrete probability distributions over `{0, .., n-1}`.

use crate::alias::AliasTable;
use crate::error::DistributionError;
use rand::Rng;

/// Tolerance used when validating that probability masses sum to 1.
const NORMALIZATION_TOLERANCE: f64 = 1e-9;

/// An exact probability distribution on the domain `{0, .., n-1}`.
///
/// The probability mass function is stored explicitly, and sampling uses
/// the Walker alias method (O(n) preprocessing, O(1) per sample). The
/// uniform distribution is special-cased: it samples with a single
/// `gen_range` call and needs no tables.
///
/// # Example
///
/// ```rust
/// use dut_distributions::DiscreteDistribution;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), dut_distributions::DistributionError> {
/// let d = DiscreteDistribution::from_pmf(vec![0.5, 0.25, 0.25])?;
/// assert_eq!(d.domain_size(), 3);
/// assert!((d.pmf(0) - 0.5).abs() < 1e-12);
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x < 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteDistribution {
    pmf: Vec<f64>,
    /// `None` for the uniform fast path.
    table: Option<AliasTable>,
    uniform: bool,
}

impl DiscreteDistribution {
    /// Creates the uniform distribution on `{0, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution needs a non-empty domain");
        DiscreteDistribution {
            pmf: vec![1.0 / n as f64; n],
            table: None,
            uniform: true,
        }
    }

    /// Creates a distribution from an explicit probability mass function.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::EmptyDomain`] for an empty vector,
    /// [`DistributionError::InvalidMass`] if any entry is negative or not
    /// finite, and [`DistributionError::NotNormalized`] if the masses do
    /// not sum to 1 within `1e-9`.
    pub fn from_pmf(pmf: Vec<f64>) -> Result<Self, DistributionError> {
        if pmf.is_empty() {
            return Err(DistributionError::EmptyDomain);
        }
        for (index, &value) in pmf.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistributionError::InvalidMass { index, value });
            }
        }
        let sum: f64 = pmf.iter().sum();
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(DistributionError::NotNormalized { sum });
        }
        let table = AliasTable::new(&pmf);
        Ok(DiscreteDistribution {
            pmf,
            table: Some(table),
            uniform: false,
        })
    }

    /// Creates a distribution from non-negative weights, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::EmptyDomain`] for an empty vector,
    /// [`DistributionError::InvalidMass`] for negative/non-finite weights,
    /// and [`DistributionError::NotNormalized`] if all weights are zero or
    /// their sum overflows `f64` (individually finite weights like two
    /// `f64::MAX` entries can still sum to `+inf`, which would normalize
    /// every entry to zero and leave the sampler degenerate).
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, DistributionError> {
        if weights.is_empty() {
            return Err(DistributionError::EmptyDomain);
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistributionError::InvalidMass { index, value });
            }
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            return Err(DistributionError::NotNormalized { sum });
        }
        let pmf: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let table = AliasTable::new(&pmf);
        Ok(DiscreteDistribution {
            pmf,
            table: Some(table),
            uniform: false,
        })
    }

    /// The domain size `n`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.pmf.len()
    }

    /// The probability mass at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the domain.
    #[inline]
    pub fn pmf(&self, x: usize) -> f64 {
        self.pmf[x]
    }

    /// A view of the full probability mass function.
    #[inline]
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Whether this distribution was constructed as the exact uniform
    /// distribution (enables the O(1)-table-free sampling fast path).
    #[inline]
    pub fn is_uniform_constructed(&self) -> bool {
        self.uniform
    }

    /// Draws one sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.table {
            None => rng.gen_range(0..self.pmf.len()),
            Some(table) => table.sample(rng),
        }
    }

    /// Draws `count` iid samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Returns the support (indices with positive mass).
    pub fn support(&self) -> Vec<usize> {
        self.pmf
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Mixes two distributions on the same domain:
    /// `(1 - beta) * self + beta * other`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] if `beta` is outside
    /// `[0, 1]`, or [`DistributionError::IncompatibleDomain`] if the domain
    /// sizes differ.
    pub fn mix(
        &self,
        other: &DiscreteDistribution,
        beta: f64,
    ) -> Result<DiscreteDistribution, DistributionError> {
        if !(0.0..=1.0).contains(&beta) {
            return Err(DistributionError::InvalidParameter {
                name: "beta",
                value: beta,
                expected: "0 <= beta <= 1",
            });
        }
        if self.domain_size() != other.domain_size() {
            return Err(DistributionError::IncompatibleDomain {
                n: other.domain_size(),
                reason: "mixture components must share a domain",
            });
        }
        let pmf: Vec<f64> = self
            .pmf
            .iter()
            .zip(other.pmf.iter())
            .map(|(&a, &b)| (1.0 - beta) * a + beta * b)
            .collect();
        DiscreteDistribution::from_pmf(pmf)
    }

    /// Applies a permutation to the domain, returning the pushed-forward
    /// distribution. `perm[x]` is the new index of element `x`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `{0, .., n-1}`.
    pub fn permute(&self, perm: &[usize]) -> DiscreteDistribution {
        assert_eq!(
            perm.len(),
            self.domain_size(),
            "permutation length mismatch"
        );
        let mut pmf = vec![f64::NAN; self.domain_size()];
        for (x, &y) in perm.iter().enumerate() {
            assert!(pmf[y].is_nan(), "permutation repeats index {y}");
            pmf[y] = self.pmf[x];
        }
        DiscreteDistribution::from_pmf(pmf).expect("permutation preserves normalization")
    }
}

impl PartialEq for DiscreteDistribution {
    fn eq(&self, other: &Self) -> bool {
        self.pmf == other.pmf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_has_equal_masses() {
        let d = DiscreteDistribution::uniform(10);
        for x in 0..10 {
            assert!((d.pmf(x) - 0.1).abs() < 1e-15);
        }
        assert!(d.is_uniform_constructed());
    }

    #[test]
    fn from_pmf_rejects_unnormalized() {
        let err = DiscreteDistribution::from_pmf(vec![0.5, 0.2]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_pmf_rejects_negative() {
        let err = DiscreteDistribution::from_pmf(vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 1, .. }
        ));
    }

    #[test]
    fn from_pmf_rejects_nan() {
        let err = DiscreteDistribution::from_pmf(vec![f64::NAN, 1.0]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 0, .. }
        ));
    }

    #[test]
    fn from_pmf_rejects_empty() {
        let err = DiscreteDistribution::from_pmf(vec![]).unwrap_err();
        assert_eq!(err, DistributionError::EmptyDomain);
    }

    #[test]
    fn from_weights_normalizes() {
        let d = DiscreteDistribution::from_weights(vec![2.0, 6.0]).unwrap();
        assert!((d.pmf(0) - 0.25).abs() < 1e-15);
        assert!((d.pmf(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        let err = DiscreteDistribution::from_weights(vec![0.0, 0.0]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_weights_rejects_overflowing_sum() {
        // Each weight is finite, but the sum overflows to +inf; the seed
        // code panicked inside the alias-table construction here.
        let err = DiscreteDistribution::from_weights(vec![f64::MAX, f64::MAX]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_weights_rejects_infinite_weight() {
        let err = DiscreteDistribution::from_weights(vec![1.0, f64::INFINITY]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 1, .. }
        ));
    }

    #[test]
    fn sample_respects_support() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn support_lists_positive_mass() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 0.5, 0.0, 0.5]).unwrap();
        assert_eq!(d.support(), vec![1, 3]);
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let d = DiscreteDistribution::uniform(4);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = d.sample_many(&mut rng, 100_000);
        let mut counts = [0usize; 4];
        for s in samples {
            counts[s] += 1;
        }
        for c in counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.25).abs() < 0.01);
        }
    }

    #[test]
    fn mix_interpolates_masses() {
        let a = DiscreteDistribution::uniform(2);
        let b = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        let m = a.mix(&b, 0.5).unwrap();
        assert!((m.pmf(0) - 0.75).abs() < 1e-15);
        assert!((m.pmf(1) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn mix_rejects_bad_beta() {
        let a = DiscreteDistribution::uniform(2);
        let err = a.mix(&a, 1.5).unwrap_err();
        assert!(matches!(err, DistributionError::InvalidParameter { .. }));
    }

    #[test]
    fn mix_rejects_mismatched_domains() {
        let a = DiscreteDistribution::uniform(2);
        let b = DiscreteDistribution::uniform(3);
        let err = a.mix(&b, 0.5).unwrap_err();
        assert!(matches!(err, DistributionError::IncompatibleDomain { .. }));
    }

    #[test]
    fn permute_moves_masses() {
        let d = DiscreteDistribution::from_pmf(vec![0.6, 0.3, 0.1]).unwrap();
        let p = d.permute(&[2, 0, 1]);
        assert!((p.pmf(2) - 0.6).abs() < 1e-15);
        assert!((p.pmf(0) - 0.3).abs() < 1e-15);
        assert!((p.pmf(1) - 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "repeats index")]
    fn permute_rejects_non_permutation() {
        let d = DiscreteDistribution::uniform(3);
        let _ = d.permute(&[0, 0, 1]);
    }

    #[test]
    fn equality_compares_pmfs() {
        let a = DiscreteDistribution::uniform(4);
        let b = DiscreteDistribution::from_pmf(vec![0.25; 4]).unwrap();
        assert_eq!(a, b);
    }
}
