//! Exact discrete probability distributions over `{0, .., n-1}`.

use crate::alias::AliasTable;
use crate::batch::LANES;
use crate::error::DistributionError;
use rand::Rng;

/// Tolerance used when validating that probability masses sum to 1.
const NORMALIZATION_TOLERANCE: f64 = 1e-9;

/// An exact probability distribution on the domain `{0, .., n-1}`.
///
/// The probability mass function is stored explicitly, and sampling uses
/// the Walker alias method (O(n) preprocessing, O(1) per sample). The
/// uniform distribution is special-cased: it samples with a single
/// `gen_range` call and needs no tables.
///
/// # Example
///
/// ```rust
/// use dut_distributions::DiscreteDistribution;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), dut_distributions::DistributionError> {
/// let d = DiscreteDistribution::from_pmf(vec![0.5, 0.25, 0.25])?;
/// assert_eq!(d.domain_size(), 3);
/// assert!((d.pmf(0) - 0.5).abs() < 1e-12);
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x < 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteDistribution {
    pmf: Vec<f64>,
    /// `None` for the uniform fast path.
    table: Option<AliasTable>,
    uniform: bool,
}

impl DiscreteDistribution {
    /// Creates the uniform distribution on `{0, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution needs a non-empty domain");
        DiscreteDistribution {
            pmf: vec![1.0 / n as f64; n],
            table: None,
            uniform: true,
        }
    }

    /// Creates a distribution from an explicit probability mass function.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::EmptyDomain`] for an empty vector,
    /// [`DistributionError::InvalidMass`] if any entry is negative or not
    /// finite, and [`DistributionError::NotNormalized`] if the masses do
    /// not sum to 1 within `1e-9`.
    pub fn from_pmf(pmf: Vec<f64>) -> Result<Self, DistributionError> {
        if pmf.is_empty() {
            return Err(DistributionError::EmptyDomain);
        }
        for (index, &value) in pmf.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistributionError::InvalidMass { index, value });
            }
        }
        let sum: f64 = pmf.iter().sum();
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(DistributionError::NotNormalized { sum });
        }
        let table = AliasTable::new(&pmf);
        Ok(DiscreteDistribution {
            pmf,
            table: Some(table),
            uniform: false,
        })
    }

    /// Creates a distribution from non-negative weights, normalizing them.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::EmptyDomain`] for an empty vector,
    /// [`DistributionError::InvalidMass`] for negative/non-finite weights,
    /// and [`DistributionError::NotNormalized`] if all weights are zero or
    /// their sum overflows `f64` (individually finite weights like two
    /// `f64::MAX` entries can still sum to `+inf`, which would normalize
    /// every entry to zero and leave the sampler degenerate).
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, DistributionError> {
        if weights.is_empty() {
            return Err(DistributionError::EmptyDomain);
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistributionError::InvalidMass { index, value });
            }
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            return Err(DistributionError::NotNormalized { sum });
        }
        let pmf: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let table = AliasTable::new(&pmf);
        Ok(DiscreteDistribution {
            pmf,
            table: Some(table),
            uniform: false,
        })
    }

    /// The domain size `n`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.pmf.len()
    }

    /// The probability mass at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the domain.
    #[inline]
    pub fn pmf(&self, x: usize) -> f64 {
        self.pmf[x]
    }

    /// A view of the full probability mass function.
    #[inline]
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Whether this distribution was constructed as the exact uniform
    /// distribution (enables the O(1)-table-free sampling fast path).
    #[inline]
    pub fn is_uniform_constructed(&self) -> bool {
        self.uniform
    }

    /// Draws one sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.table {
            None => rng.gen_range(0..self.pmf.len()),
            Some(table) => table.sample(rng),
        }
    }

    /// Draws `count` iid samples.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Fills `out` with `out.len()` iid samples using the batched
    /// kernels (branchless, `u32` output lanes).
    ///
    /// The raw `u64`s are consumed from `rng` in exactly the order
    /// [`DiscreteDistribution::sample`] consumes them, so for any
    /// generator this is bit-identical to `out.len()` scalar `sample`
    /// calls — batching reorders work, never randomness. The uniform
    /// fast path uses one widening-multiply word per sample; the alias
    /// path two words (index, fraction). Both paths draw serially per
    /// sample on purpose: a lane-buffered pre-fill tempts the
    /// autovectorizer into synthesized 64-bit vector multiplies that
    /// lose to native scalar `imul` on baseline x86-64 (see the
    /// `alias` module docs).
    ///
    /// # Panics
    ///
    /// Panics if the domain size exceeds `u32::MAX` (samples must fit
    /// the `u32` output lanes; alias-table construction already
    /// enforces this for non-uniform distributions).
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        match &self.table {
            Some(table) => table.sample_batch(rng, out),
            None => {
                assert!(
                    self.pmf.len() <= u32::MAX as usize,
                    "batched sampling domain exceeds u32 range"
                );
                let n = self.pmf.len() as u64;
                for o in out.iter_mut() {
                    // The exact `gen_range(0..n)` widening-multiply
                    // reduction of the vendored rand.
                    *o = ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u32;
                }
            }
        }
    }

    /// Draws `count` iid samples via the batched kernels, **appending**
    /// them to `out`. Bit-identical to pushing `count` scalar
    /// [`DiscreteDistribution::sample`] calls (see
    /// [`DiscreteDistribution::sample_batch`]); domains wider than
    /// `u32` fall back to the scalar loop rather than panicking.
    pub fn sample_batch_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        out: &mut Vec<usize>,
    ) {
        if self.pmf.len() > u32::MAX as usize {
            out.reserve(count);
            for _ in 0..count {
                out.push(self.sample(rng));
            }
            return;
        }
        out.reserve(count);
        let mut lanes = [0u32; LANES];
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(LANES);
            self.sample_batch(rng, &mut lanes[..take]);
            out.extend(lanes[..take].iter().map(|&x| x as usize));
            remaining -= take;
        }
    }

    /// Returns the support (indices with positive mass).
    pub fn support(&self) -> Vec<usize> {
        self.pmf
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Mixes two distributions on the same domain:
    /// `(1 - beta) * self + beta * other`.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] if `beta` is outside
    /// `[0, 1]`, or [`DistributionError::IncompatibleDomain`] if the domain
    /// sizes differ.
    pub fn mix(
        &self,
        other: &DiscreteDistribution,
        beta: f64,
    ) -> Result<DiscreteDistribution, DistributionError> {
        if !(0.0..=1.0).contains(&beta) {
            return Err(DistributionError::InvalidParameter {
                name: "beta",
                value: beta,
                expected: "0 <= beta <= 1",
            });
        }
        if self.domain_size() != other.domain_size() {
            return Err(DistributionError::IncompatibleDomain {
                n: other.domain_size(),
                reason: "mixture components must share a domain",
            });
        }
        let pmf: Vec<f64> = self
            .pmf
            .iter()
            .zip(other.pmf.iter())
            .map(|(&a, &b)| (1.0 - beta) * a + beta * b)
            .collect();
        DiscreteDistribution::from_pmf(pmf)
    }

    /// Applies a permutation to the domain, returning the pushed-forward
    /// distribution. `perm[x]` is the new index of element `x`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `{0, .., n-1}`.
    pub fn permute(&self, perm: &[usize]) -> DiscreteDistribution {
        assert_eq!(
            perm.len(),
            self.domain_size(),
            "permutation length mismatch"
        );
        let mut pmf = vec![f64::NAN; self.domain_size()];
        for (x, &y) in perm.iter().enumerate() {
            assert!(pmf[y].is_nan(), "permutation repeats index {y}");
            pmf[y] = self.pmf[x];
        }
        DiscreteDistribution::from_pmf(pmf).expect("permutation preserves normalization")
    }
}

impl PartialEq for DiscreteDistribution {
    fn eq(&self, other: &Self) -> bool {
        self.pmf == other.pmf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_has_equal_masses() {
        let d = DiscreteDistribution::uniform(10);
        for x in 0..10 {
            assert!((d.pmf(x) - 0.1).abs() < 1e-15);
        }
        assert!(d.is_uniform_constructed());
    }

    #[test]
    fn from_pmf_rejects_unnormalized() {
        let err = DiscreteDistribution::from_pmf(vec![0.5, 0.2]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_pmf_rejects_negative() {
        let err = DiscreteDistribution::from_pmf(vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 1, .. }
        ));
    }

    #[test]
    fn from_pmf_rejects_nan() {
        let err = DiscreteDistribution::from_pmf(vec![f64::NAN, 1.0]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 0, .. }
        ));
    }

    #[test]
    fn from_pmf_rejects_empty() {
        let err = DiscreteDistribution::from_pmf(vec![]).unwrap_err();
        assert_eq!(err, DistributionError::EmptyDomain);
    }

    #[test]
    fn from_weights_normalizes() {
        let d = DiscreteDistribution::from_weights(vec![2.0, 6.0]).unwrap();
        assert!((d.pmf(0) - 0.25).abs() < 1e-15);
        assert!((d.pmf(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn from_weights_rejects_all_zero() {
        let err = DiscreteDistribution::from_weights(vec![0.0, 0.0]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_weights_rejects_overflowing_sum() {
        // Each weight is finite, but the sum overflows to +inf; the seed
        // code panicked inside the alias-table construction here.
        let err = DiscreteDistribution::from_weights(vec![f64::MAX, f64::MAX]).unwrap_err();
        assert!(matches!(err, DistributionError::NotNormalized { .. }));
    }

    #[test]
    fn from_weights_rejects_infinite_weight() {
        let err = DiscreteDistribution::from_weights(vec![1.0, f64::INFINITY]).unwrap_err();
        assert!(matches!(
            err,
            DistributionError::InvalidMass { index: 1, .. }
        ));
    }

    #[test]
    fn sample_respects_support() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn support_lists_positive_mass() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 0.5, 0.0, 0.5]).unwrap();
        assert_eq!(d.support(), vec![1, 3]);
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let d = DiscreteDistribution::uniform(4);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = d.sample_many(&mut rng, 100_000);
        let mut counts = [0usize; 4];
        for s in samples {
            counts[s] += 1;
        }
        for c in counts {
            let f = c as f64 / 100_000.0;
            assert!((f - 0.25).abs() < 0.01);
        }
    }

    #[test]
    fn mix_interpolates_masses() {
        let a = DiscreteDistribution::uniform(2);
        let b = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        let m = a.mix(&b, 0.5).unwrap();
        assert!((m.pmf(0) - 0.75).abs() < 1e-15);
        assert!((m.pmf(1) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn mix_rejects_bad_beta() {
        let a = DiscreteDistribution::uniform(2);
        let err = a.mix(&a, 1.5).unwrap_err();
        assert!(matches!(err, DistributionError::InvalidParameter { .. }));
    }

    #[test]
    fn mix_rejects_mismatched_domains() {
        let a = DiscreteDistribution::uniform(2);
        let b = DiscreteDistribution::uniform(3);
        let err = a.mix(&b, 0.5).unwrap_err();
        assert!(matches!(err, DistributionError::IncompatibleDomain { .. }));
    }

    #[test]
    fn permute_moves_masses() {
        let d = DiscreteDistribution::from_pmf(vec![0.6, 0.3, 0.1]).unwrap();
        let p = d.permute(&[2, 0, 1]);
        assert!((p.pmf(2) - 0.6).abs() < 1e-15);
        assert!((p.pmf(0) - 0.3).abs() < 1e-15);
        assert!((p.pmf(1) - 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "repeats index")]
    fn permute_rejects_non_permutation() {
        let d = DiscreteDistribution::uniform(3);
        let _ = d.permute(&[0, 0, 1]);
    }

    #[test]
    fn equality_compares_pmfs() {
        let a = DiscreteDistribution::uniform(4);
        let b = DiscreteDistribution::from_pmf(vec![0.25; 4]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_uniform_draws_are_bit_identical_to_scalar() {
        let d = DiscreteDistribution::uniform(1000);
        for seed in [0u64, 6, 99] {
            let mut scalar = StdRng::seed_from_u64(seed);
            let expect: Vec<u32> = (0..83).map(|_| d.sample(&mut scalar) as u32).collect();
            let mut batched = StdRng::seed_from_u64(seed);
            let mut got = vec![0u32; 83];
            d.sample_batch(&mut batched, &mut got);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn batched_alias_draws_are_bit_identical_to_scalar() {
        let d = DiscreteDistribution::from_weights(vec![3.0, 1.0, 0.0, 5.0, 0.25]).unwrap();
        let mut scalar = StdRng::seed_from_u64(10);
        let expect: Vec<usize> = d.sample_many(&mut scalar, 70);
        let mut batched = StdRng::seed_from_u64(10);
        let mut got = Vec::new();
        d.sample_batch_into(&mut batched, 70, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn batched_into_appends_and_preserves_rng_state() {
        use rand::RngCore;
        let d = DiscreteDistribution::uniform(17);
        let mut a = StdRng::seed_from_u64(12);
        let mut out = vec![999usize];
        d.sample_batch_into(&mut a, 41, &mut out);
        assert_eq!(out.len(), 42);
        assert_eq!(out[0], 999);
        let mut b = StdRng::seed_from_u64(12);
        for (i, &x) in out[1..].iter().enumerate() {
            assert_eq!(x, d.sample(&mut b), "sample {i}");
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
