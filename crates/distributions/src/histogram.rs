//! Sample histograms and empirical statistics.
//!
//! Symmetric properties of distributions (uniformity among them) depend
//! on samples only through their histogram. This module provides the
//! histogram type plus empirical estimators used by baselines and
//! experiment harnesses.

use std::collections::HashMap;

/// A histogram of samples from a domain `{0, .., n-1}`.
///
/// Stores only the non-zero counts, so it is cheap even when the domain is
/// huge and the sample set tiny (the regime of the paper's gap tester).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: HashMap<usize, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds a histogram from samples.
    pub fn from_samples(samples: &[usize]) -> Self {
        let mut h = Histogram::new();
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Records one sample.
    pub fn add(&mut self, x: usize) {
        *self.counts.entry(x).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count of element `x`.
    pub fn count(&self, x: usize) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct elements observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Number of colliding (unordered) pairs: `Σ_x C(count(x), 2)`.
    pub fn collision_pairs(&self) -> u64 {
        self.counts.values().map(|&c| c * (c - 1) / 2).sum()
    }

    /// Whether any element was observed more than once.
    pub fn has_collision(&self) -> bool {
        self.counts.values().any(|&c| c > 1)
    }

    /// Unbiased estimate of the collision probability `χ(μ)`:
    /// `collision_pairs / C(total, 2)`.
    ///
    /// Returns `None` with fewer than two samples.
    pub fn collision_probability_estimate(&self) -> Option<f64> {
        if self.total < 2 {
            return None;
        }
        let pairs = self.collision_pairs() as f64;
        let denom = (self.total * (self.total - 1) / 2) as f64;
        Some(pairs / denom)
    }

    /// Iterates over `(element, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().map(|(&x, &c)| (x, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (x, c) in other.iter() {
            *self.counts.entry(x).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

impl Extend<usize> for Histogram {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{collision_pair_count, collision_probability};
    use crate::families::paninski_far;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
        assert_eq!(h.collision_pairs(), 0);
        assert!(!h.has_collision());
        assert_eq!(h.collision_probability_estimate(), None);
    }

    #[test]
    fn counts_and_collisions() {
        let h = Histogram::from_samples(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.collision_pairs(), 1 + 3);
        assert!(h.has_collision());
    }

    #[test]
    fn pair_count_agrees_with_direct_function() {
        let samples = [5usize, 1, 5, 5, 2, 1];
        let h = Histogram::from_samples(&samples);
        assert_eq!(h.collision_pairs(), collision_pair_count(&samples));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_samples(&[1, 2]);
        let b = Histogram::from_samples(&[2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert!(a.has_collision());
    }

    #[test]
    fn from_iterator_and_extend() {
        let h: Histogram = vec![1usize, 1, 2].into_iter().collect();
        assert_eq!(h.total(), 3);
        let mut h2 = h.clone();
        h2.extend(vec![2usize, 3]);
        assert_eq!(h2.total(), 5);
        assert_eq!(h2.count(2), 2);
    }

    #[test]
    fn chi_estimator_is_consistent() {
        // With many samples, the estimator should approach the true chi.
        let d = paninski_far(64, 0.8).unwrap();
        let truth = collision_probability(&d);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = d.sample_many(&mut rng, 200_000);
        let h = Histogram::from_samples(&samples);
        let est = h.collision_probability_estimate().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.02,
            "estimate {est} too far from {truth}"
        );
    }

    #[test]
    fn chi_estimator_requires_two_samples() {
        let h = Histogram::from_samples(&[7]);
        assert_eq!(h.collision_probability_estimate(), None);
    }
}
