//! Per-symbol occupancy counts: the state mergeable sketches share.
//!
//! The collision pair count `Σ_x C(count(x), 2)` and the singleton count
//! `|{x : count(x) = 1}|` are both functions of the per-symbol occupancy
//! vector, and both admit O(1) incremental updates when a symbol's count
//! changes by one. [`SymbolCounts`] is that vector: a dense `u32` table
//! over the domain plus a touched-symbol list so iterating the support
//! costs O(support), not O(n). `dut-stream`'s sketches are thin layers of
//! arithmetic over this type.

/// Dense per-symbol occupancy counts over the domain `{0, .., n-1}`.
///
/// Increments and decrements return the information an incremental
/// statistic needs (the count *before* an increment, the count *after* a
/// decrement), so callers never re-read the table. The support — symbols
/// with nonzero count — is tracked as an insertion-ordered list and
/// re-compacted lazily, which keeps [`SymbolCounts::iter_nonzero`]
/// proportional to the support even after heavy decrement churn.
///
/// ```rust
/// use dut_distributions::counts::SymbolCounts;
///
/// let mut counts = SymbolCounts::new(8);
/// assert_eq!(counts.increment(3), 0); // prior count
/// assert_eq!(counts.increment(3), 1);
/// assert_eq!(counts.count(3), 2);
/// assert_eq!(counts.decrement(3), 1); // new count
/// assert_eq!(counts.total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolCounts {
    counts: Vec<u32>,
    /// Symbols that may have nonzero count, in first-touch order.
    /// May contain symbols whose count has since dropped to zero;
    /// `iter_nonzero` filters and `compact` trims them.
    touched: Vec<usize>,
    /// Whether a symbol is already listed in `touched`.
    listed: Vec<bool>,
    total: u64,
}

impl SymbolCounts {
    /// Creates an all-zero count table over the domain `{0, .., n-1}`.
    pub fn new(domain_size: usize) -> Self {
        SymbolCounts {
            counts: vec![0; domain_size],
            touched: Vec::new(),
            listed: vec![false; domain_size],
            total: 0,
        }
    }

    /// The domain size `n` the table was created with.
    pub fn domain_size(&self) -> usize {
        self.counts.len()
    }

    /// Total occupancy `Σ_x count(x)` — the number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The count of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the domain.
    pub fn count(&self, symbol: usize) -> u32 {
        self.counts[symbol]
    }

    /// Adds one occurrence of `symbol` and returns its count *before*
    /// the increment — exactly the number of new colliding pairs the
    /// occurrence creates.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the domain or its count would
    /// overflow `u32`.
    pub fn increment(&mut self, symbol: usize) -> u32 {
        self.add(symbol, 1)
    }

    /// Adds `k` occurrences of `symbol` and returns its count *before*
    /// the addition (the bulk form used by sketch merging).
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the domain or its count would
    /// overflow `u32`.
    pub fn add(&mut self, symbol: usize, k: u32) -> u32 {
        let prior = self.counts[symbol];
        self.counts[symbol] = prior.checked_add(k).expect("symbol count overflowed u32");
        self.total += u64::from(k);
        if k > 0 && !self.listed[symbol] {
            self.listed[symbol] = true;
            self.touched.push(symbol);
        }
        prior
    }

    /// Removes one occurrence of `symbol` and returns its count *after*
    /// the decrement — exactly what an incremental singleton statistic
    /// needs (new count 0: a singleton died earlier; new count 1: a
    /// symbol just became a singleton).
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the domain or its count is zero —
    /// retiring a sample that was never pushed is always a caller bug.
    pub fn decrement(&mut self, symbol: usize) -> u32 {
        let prior = self.counts[symbol];
        assert!(prior > 0, "decrement of zero-count symbol {symbol}");
        let new = prior - 1;
        self.counts[symbol] = new;
        self.total -= 1;
        new
    }

    /// Iterates `(symbol, count)` over the support in first-touch order.
    ///
    /// Symbols whose count has dropped back to zero are skipped. Cost is
    /// O(touched symbols), which [`SymbolCounts::compact`] keeps close to
    /// the live support.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.touched
            .iter()
            .filter(|&&x| self.counts[x] > 0)
            .map(|&x| (x, self.counts[x]))
    }

    /// Resets every count to zero without releasing the table — O(touched
    /// symbols), so a sketch that processes many small blocks (e.g. the
    /// per-virtual-node blocks of the streaming threshold tester) pays
    /// per block only for the symbols that block actually touched.
    pub fn clear(&mut self) {
        for &x in &self.touched {
            self.counts[x] = 0;
            self.listed[x] = false;
        }
        self.touched.clear();
        self.total = 0;
    }

    /// Drops zero-count symbols from the touched list so future
    /// [`SymbolCounts::iter_nonzero`] walks stay proportional to the live
    /// support. Windowed sketches call this periodically after eviction
    /// churn; it never changes observable counts.
    pub fn compact(&mut self) {
        let counts = &self.counts;
        let listed = &mut self.listed;
        self.touched.retain(|&x| {
            if counts[x] > 0 {
                true
            } else {
                listed[x] = false;
                false
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_returns_prior_count() {
        let mut c = SymbolCounts::new(4);
        assert_eq!(c.increment(2), 0);
        assert_eq!(c.increment(2), 1);
        assert_eq!(c.increment(2), 2);
        assert_eq!(c.count(2), 3);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn decrement_returns_new_count() {
        let mut c = SymbolCounts::new(4);
        c.add(1, 3);
        assert_eq!(c.decrement(1), 2);
        assert_eq!(c.decrement(1), 1);
        assert_eq!(c.decrement(1), 0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    #[should_panic(expected = "decrement of zero-count symbol")]
    fn decrement_of_zero_count_panics() {
        let mut c = SymbolCounts::new(4);
        c.decrement(0);
    }

    #[test]
    fn iter_nonzero_lists_each_symbol_once_in_touch_order() {
        let mut c = SymbolCounts::new(8);
        c.increment(5);
        c.increment(1);
        c.increment(5);
        c.increment(7);
        let support: Vec<(usize, u32)> = c.iter_nonzero().collect();
        assert_eq!(support, vec![(5, 2), (1, 1), (7, 1)]);
    }

    #[test]
    fn iter_nonzero_skips_retired_symbols_and_compact_trims() {
        let mut c = SymbolCounts::new(8);
        c.increment(3);
        c.increment(4);
        c.decrement(3);
        let support: Vec<(usize, u32)> = c.iter_nonzero().collect();
        assert_eq!(support, vec![(4, 1)]);
        c.compact();
        // A re-pushed symbol re-enters the list exactly once.
        c.increment(3);
        c.increment(3);
        let support: Vec<(usize, u32)> = c.iter_nonzero().collect();
        assert_eq!(support, vec![(4, 1), (3, 2)]);
    }

    #[test]
    fn clear_resets_counts_and_support() {
        let mut c = SymbolCounts::new(8);
        c.add(2, 3);
        c.increment(6);
        c.clear();
        assert_eq!(c.total(), 0);
        assert_eq!(c.count(2), 0);
        assert_eq!(c.iter_nonzero().count(), 0);
        // The table is fully reusable after a clear.
        assert_eq!(c.increment(2), 0);
        let support: Vec<(usize, u32)> = c.iter_nonzero().collect();
        assert_eq!(support, vec![(2, 1)]);
    }

    #[test]
    fn pair_count_identity_matches_batch_statistic() {
        // Σ_x C(count(x), 2) accumulated via increment() priors equals
        // the batch collision_pair_count on the same samples.
        let samples = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let mut c = SymbolCounts::new(16);
        let mut pairs: u64 = 0;
        for &x in &samples {
            pairs += u64::from(c.increment(x));
        }
        assert_eq!(pairs, crate::collision::collision_pair_count(&samples));
    }
}
