//! Error types for distribution construction.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an invalid [`DiscreteDistribution`]
/// or distribution family.
///
/// [`DiscreteDistribution`]: crate::DiscreteDistribution
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionError {
    /// The domain size was zero.
    EmptyDomain,
    /// A probability mass was negative or not finite.
    InvalidMass {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The probability masses do not sum to 1 (within tolerance).
    NotNormalized {
        /// The actual sum of the provided masses.
        sum: f64,
    },
    /// A family parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the valid range.
        expected: &'static str,
    },
    /// The requested domain size is incompatible with the family
    /// (e.g. the Paninski family requires an even domain).
    IncompatibleDomain {
        /// The requested domain size.
        n: usize,
        /// Why it is incompatible.
        reason: &'static str,
    },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::EmptyDomain => write!(f, "domain size must be positive"),
            DistributionError::InvalidMass { index, value } => {
                write!(f, "probability mass at index {index} is invalid: {value}")
            }
            DistributionError::NotNormalized { sum } => {
                write!(f, "probability masses sum to {sum}, expected 1")
            }
            DistributionError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(f, "parameter {name} = {value} out of range ({expected})")
            }
            DistributionError::IncompatibleDomain { n, reason } => {
                write!(f, "domain size {n} incompatible: {reason}")
            }
        }
    }
}

impl Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DistributionError::EmptyDomain;
        let msg = e.to_string();
        assert!(msg.starts_with("domain"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DistributionError>();
    }

    #[test]
    fn display_invalid_parameter() {
        let e = DistributionError::InvalidParameter {
            name: "epsilon",
            value: 3.0,
            expected: "0 < epsilon <= 2",
        };
        assert!(e.to_string().contains("epsilon"));
        assert!(e.to_string().contains('3'));
    }
}
