//! Extremal far-from-uniform distribution families.
//!
//! Uniformity testers are quantified over *all* distributions that are
//! ε-far from uniform in L1 distance. In practice (and in lower-bound
//! proofs) a handful of extremal families capture the hard cases:
//!
//! * [`paninski_far`] — the Paninski pair-perturbation family. It is the
//!   classic worst case for collision-based testers: its collision
//!   probability is exactly `(1 + ε²)/n`, meeting the paper's Lemma 3.2
//!   with equality.
//! * [`heavy_set_far`] — a two-level distribution supported on a subset.
//! * [`point_mass_mixture`] — uniform mixed with a point mass ("one hot
//!   element"), modelling e.g. a denial-of-service victim address.
//! * [`step_far`] — a bucketed step distribution with two mass levels.
//!
//! Every constructor takes the desired exact L1 distance `epsilon` from
//! uniform and guarantees the output's L1 distance equals `epsilon` (up to
//! floating point), so experiments can sweep ε directly.

use crate::dist::DiscreteDistribution;
use crate::distance::l1_to_uniform;
use crate::error::DistributionError;
use rand::Rng;

fn check_epsilon(epsilon: f64, max: f64) -> Result<(), DistributionError> {
    if !(epsilon > 0.0 && epsilon <= max && epsilon.is_finite()) {
        return Err(DistributionError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            expected: "0 < epsilon <= allowed maximum for the family",
        });
    }
    Ok(())
}

/// The Paninski pair-perturbation family.
///
/// The domain is split into `n/2` consecutive pairs; within pair `i` the
/// two elements get masses `(1 ± ε)/n` (the sign alternating within the
/// pair). The result has L1 distance exactly `epsilon` from uniform and
/// collision probability exactly `(1 + ε²)/n` — the minimum possible for
/// an ε-far distribution (Lemma 3.2 is tight on this family), which makes
/// it the worst case for collision-based testers.
///
/// # Errors
///
/// Returns an error when `n` is odd or zero, or when `epsilon` is outside
/// `(0, 1]`.
///
/// # Example
///
/// ```rust
/// use dut_distributions::families::paninski_far;
/// use dut_distributions::distance::l1_to_uniform;
///
/// # fn main() -> Result<(), dut_distributions::DistributionError> {
/// let d = paninski_far(1000, 0.5)?;
/// assert!((l1_to_uniform(&d) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn paninski_far(n: usize, epsilon: f64) -> Result<DiscreteDistribution, DistributionError> {
    if n == 0 {
        return Err(DistributionError::EmptyDomain);
    }
    if !n.is_multiple_of(2) {
        return Err(DistributionError::IncompatibleDomain {
            n,
            reason: "paninski family requires an even domain size",
        });
    }
    check_epsilon(epsilon, 1.0)?;
    let base = 1.0 / n as f64;
    let mut pmf = Vec::with_capacity(n);
    for _ in 0..n / 2 {
        pmf.push(base * (1.0 + epsilon));
        pmf.push(base * (1.0 - epsilon));
    }
    DiscreteDistribution::from_pmf(pmf)
}

/// A randomly signed Paninski perturbation: like [`paninski_far`] but the
/// sign pattern within each pair is chosen by `rng`, producing a random
/// member of the lower-bound family of [Paninski 2008].
///
/// # Errors
///
/// Same conditions as [`paninski_far`].
pub fn paninski_far_random<R: Rng + ?Sized>(
    n: usize,
    epsilon: f64,
    rng: &mut R,
) -> Result<DiscreteDistribution, DistributionError> {
    if n == 0 {
        return Err(DistributionError::EmptyDomain);
    }
    if !n.is_multiple_of(2) {
        return Err(DistributionError::IncompatibleDomain {
            n,
            reason: "paninski family requires an even domain size",
        });
    }
    check_epsilon(epsilon, 1.0)?;
    let base = 1.0 / n as f64;
    let mut pmf = Vec::with_capacity(n);
    for _ in 0..n / 2 {
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        pmf.push(base * (1.0 + sign * epsilon));
        pmf.push(base * (1.0 - sign * epsilon));
    }
    DiscreteDistribution::from_pmf(pmf)
}

/// A two-level "heavy set" distribution: uniform on a subset of size `w`,
/// zero elsewhere, where `w = round(n * (1 - ε/2))` so the L1 distance to
/// uniform is (almost exactly) `epsilon`.
///
/// This family has a much larger collision probability (`n/w · 1/n`) than
/// the Paninski family at the same distance, so collision-based testers
/// find it *easier* — useful as a contrast case in experiments.
///
/// # Errors
///
/// Returns an error when `epsilon` is outside `(0, 2)` or the implied
/// support would be empty.
pub fn heavy_set_far(n: usize, epsilon: f64) -> Result<DiscreteDistribution, DistributionError> {
    if n == 0 {
        return Err(DistributionError::EmptyDomain);
    }
    check_epsilon(epsilon, 1.999_999)?;
    let w = ((n as f64) * (1.0 - epsilon / 2.0)).round() as usize;
    if w == 0 || w >= n {
        return Err(DistributionError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            expected: "epsilon must yield a support size in (0, n)",
        });
    }
    let mut pmf = vec![0.0; n];
    let mass = 1.0 / w as f64;
    for p in pmf.iter_mut().take(w) {
        *p = mass;
    }
    DiscreteDistribution::from_pmf(pmf)
}

/// Uniform mixed with a point mass at `hot`:
/// `μ = (1 - β) U + β δ_hot` with `β = ε / (2 (1 - 1/n))` so the L1
/// distance to uniform is exactly `epsilon`.
///
/// Models a scenario where one domain element (a DDoS victim address, a
/// stuck sensor reading) receives excess probability.
///
/// # Errors
///
/// Returns an error if `hot >= n`, or `epsilon` makes `β` leave `[0, 1]`.
pub fn point_mass_mixture(
    n: usize,
    epsilon: f64,
    hot: usize,
) -> Result<DiscreteDistribution, DistributionError> {
    if n == 0 {
        return Err(DistributionError::EmptyDomain);
    }
    if hot >= n {
        return Err(DistributionError::InvalidParameter {
            name: "hot",
            value: hot as f64,
            expected: "hot < n",
        });
    }
    if n == 1 {
        return Err(DistributionError::IncompatibleDomain {
            n,
            reason: "point-mass mixture needs n >= 2",
        });
    }
    let beta = epsilon / (2.0 * (1.0 - 1.0 / n as f64));
    if !(0.0..=1.0).contains(&beta) || epsilon <= 0.0 {
        return Err(DistributionError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            expected: "epsilon must yield a mixture weight in (0, 1]",
        });
    }
    let base = (1.0 - beta) / n as f64;
    let mut pmf = vec![base; n];
    pmf[hot] += beta;
    DiscreteDistribution::from_pmf(pmf)
}

/// A bucketed step distribution: the first half of the domain gets mass
/// `(1 + ε)/n` per element and the second half `(1 - ε)/n`, giving L1
/// distance exactly `epsilon`.
///
/// Unlike [`paninski_far`] the deviation is *spatially correlated*
/// (all-heavy block then all-light block), which matters for testers that
/// exploit domain structure but is equivalent for symmetric testers.
///
/// # Errors
///
/// Returns an error for odd/zero `n` or `epsilon` outside `(0, 1]`.
pub fn step_far(n: usize, epsilon: f64) -> Result<DiscreteDistribution, DistributionError> {
    if n == 0 {
        return Err(DistributionError::EmptyDomain);
    }
    if !n.is_multiple_of(2) {
        return Err(DistributionError::IncompatibleDomain {
            n,
            reason: "step family requires an even domain size",
        });
    }
    check_epsilon(epsilon, 1.0)?;
    let base = 1.0 / n as f64;
    let mut pmf = vec![base * (1.0 + epsilon); n / 2];
    pmf.extend(std::iter::repeat_n(base * (1.0 - epsilon), n / 2));
    DiscreteDistribution::from_pmf(pmf)
}

/// A random distribution at L1 distance *at least* `epsilon` from uniform,
/// produced by drawing a random Paninski sign pattern and then applying a
/// random domain permutation. Useful for fuzzing testers against
/// non-adversarial far instances.
///
/// # Errors
///
/// Same conditions as [`paninski_far`].
pub fn random_far<R: Rng + ?Sized>(
    n: usize,
    epsilon: f64,
    rng: &mut R,
) -> Result<DiscreteDistribution, DistributionError> {
    let d = paninski_far_random(n, epsilon, rng)?;
    // Fisher-Yates permutation of the domain.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    Ok(d.permute(&perm))
}

/// Catalogue of named far families, used by experiment harnesses to sweep
/// over all families uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FarFamily {
    /// [`paninski_far`] — minimal collision probability (hardest).
    Paninski,
    /// [`heavy_set_far`] — two-level support restriction.
    HeavySet,
    /// [`point_mass_mixture`] — uniform plus one hot element.
    PointMass,
    /// [`step_far`] — block-correlated deviation.
    Step,
}

impl FarFamily {
    /// All families, in catalogue order.
    pub const ALL: [FarFamily; 4] = [
        FarFamily::Paninski,
        FarFamily::HeavySet,
        FarFamily::PointMass,
        FarFamily::Step,
    ];

    /// Short machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            FarFamily::Paninski => "paninski",
            FarFamily::HeavySet => "heavy-set",
            FarFamily::PointMass => "point-mass",
            FarFamily::Step => "step",
        }
    }

    /// Instantiates the family at domain size `n` and distance `epsilon`.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's error conditions.
    pub fn instantiate(
        &self,
        n: usize,
        epsilon: f64,
    ) -> Result<DiscreteDistribution, DistributionError> {
        match self {
            FarFamily::Paninski => paninski_far(n, epsilon),
            FarFamily::HeavySet => heavy_set_far(n, epsilon),
            FarFamily::PointMass => point_mass_mixture(n, epsilon, 0),
            FarFamily::Step => step_far(n, epsilon),
        }
    }
}

/// Verifies that `d` is at L1 distance at least `epsilon - tolerance` from
/// uniform. Experiment harnesses call this as a sanity check after
/// constructing far instances.
pub fn is_epsilon_far(d: &DiscreteDistribution, epsilon: f64, tolerance: f64) -> bool {
    l1_to_uniform(d) >= epsilon - tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::collision_probability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paninski_l1_distance_is_exact() {
        for &eps in &[0.1, 0.25, 0.5, 1.0] {
            let d = paninski_far(100, eps).unwrap();
            assert!(
                (l1_to_uniform(&d) - eps).abs() < 1e-12,
                "eps = {eps}: got {}",
                l1_to_uniform(&d)
            );
        }
    }

    #[test]
    fn paninski_collision_probability_meets_lemma_3_2_with_equality() {
        let n = 2048;
        let eps = 0.5;
        let d = paninski_far(n, eps).unwrap();
        let chi = collision_probability(&d);
        let bound = (1.0 + eps * eps) / n as f64;
        assert!((chi - bound).abs() < 1e-15);
    }

    #[test]
    fn paninski_rejects_odd_domain() {
        let err = paninski_far(7, 0.5).unwrap_err();
        assert!(matches!(err, DistributionError::IncompatibleDomain { .. }));
    }

    #[test]
    fn paninski_rejects_bad_epsilon() {
        assert!(paninski_far(8, 0.0).is_err());
        assert!(paninski_far(8, 1.5).is_err());
        assert!(paninski_far(8, -0.1).is_err());
        assert!(paninski_far(8, f64::NAN).is_err());
    }

    #[test]
    fn paninski_random_has_exact_distance() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = paninski_far_random(64, 0.3, &mut rng).unwrap();
        assert!((l1_to_uniform(&d) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn heavy_set_distance_close_to_epsilon() {
        let d = heavy_set_far(10_000, 0.5).unwrap();
        // Rounding of the support size w introduces O(1/n) slack.
        assert!((l1_to_uniform(&d) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn heavy_set_support_size() {
        let d = heavy_set_far(1000, 0.5).unwrap();
        assert_eq!(d.support().len(), 750);
    }

    #[test]
    fn heavy_set_collision_probability_exceeds_paninski() {
        let n = 1000;
        let eps = 0.5;
        let heavy = heavy_set_far(n, eps).unwrap();
        let pan = paninski_far(n, eps).unwrap();
        assert!(collision_probability(&heavy) > collision_probability(&pan));
    }

    #[test]
    fn point_mass_distance_is_exact() {
        let d = point_mass_mixture(1000, 0.4, 17).unwrap();
        assert!((l1_to_uniform(&d) - 0.4).abs() < 1e-12);
        // hot element got the extra mass
        assert!(d.pmf(17) > d.pmf(16));
    }

    #[test]
    fn point_mass_rejects_out_of_range_hot() {
        assert!(point_mass_mixture(10, 0.3, 10).is_err());
    }

    #[test]
    fn step_distance_is_exact() {
        let d = step_far(512, 0.7).unwrap();
        assert!((l1_to_uniform(&d) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn random_far_preserves_distance() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = random_far(256, 0.5, &mut rng).unwrap();
        assert!((l1_to_uniform(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_catalogue_families_instantiate_and_are_far() {
        for fam in FarFamily::ALL {
            let d = fam.instantiate(1024, 0.5).unwrap();
            assert!(
                is_epsilon_far(&d, 0.5, 1e-2),
                "family {} not epsilon-far",
                fam.name()
            );
        }
    }

    #[test]
    fn family_names_are_unique() {
        let names: Vec<&str> = FarFamily::ALL.iter().map(|f| f.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
