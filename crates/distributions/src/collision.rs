//! Collision statistics: the engine of collision-based uniformity testing.
//!
//! The *collision probability* of a distribution μ is
//! `χ(μ) = Pr_{X,Y∼μ}[X = Y] = Σ_x μ(x)²`. The uniform distribution on n
//! elements minimizes it at `1/n`; the paper's Lemma 3.2 shows any
//! distribution ε-far from uniform has `χ > (1 + ε²)/n`. The paper's
//! Lemma 3.3 (due to Wiener) bounds the probability that `s` iid samples
//! contain *no* collision — the single event the gap tester observes.

use crate::dist::DiscreteDistribution;

/// Collision probability `χ(μ) = Σ_x μ(x)²`.
///
/// # Example
///
/// ```rust
/// use dut_distributions::DiscreteDistribution;
/// use dut_distributions::collision::collision_probability;
///
/// let u = DiscreteDistribution::uniform(100);
/// assert!((collision_probability(&u) - 0.01).abs() < 1e-15);
/// ```
pub fn collision_probability(mu: &DiscreteDistribution) -> f64 {
    mu.pmf_slice().iter().map(|&p| p * p).sum()
}

/// The Lemma 3.2 lower bound on collision probability for an ε-far
/// distribution: `(1 + ε²)/n`.
pub fn lemma_3_2_bound(n: usize, epsilon: f64) -> f64 {
    (1.0 + epsilon * epsilon) / n as f64
}

/// Checks Lemma 3.2 for a concrete distribution: if `mu` is ε-far from
/// uniform then `χ(μ) ≥ (1 + ε²)/n` (the paper states strict inequality;
/// extremal families achieve equality up to floating point, so we test
/// with a small tolerance).
pub fn satisfies_lemma_3_2(mu: &DiscreteDistribution, epsilon: f64) -> bool {
    collision_probability(mu) >= lemma_3_2_bound(mu.domain_size(), epsilon) - 1e-12
}

/// The Wiener birthday bound (the paper's Lemma 3.3): for any distribution
/// with collision probability `chi`, the probability that `s` iid samples
/// are all distinct is at most
/// `e^{−(s−1)√χ} · (1 + (s−1)√χ)`.
///
/// # Panics
///
/// Panics if `chi` is not in `[0, 1]` or `s == 0`.
pub fn wiener_no_collision_upper_bound(s: usize, chi: f64) -> f64 {
    assert!((0.0..=1.0).contains(&chi), "chi must be a probability");
    assert!(s > 0, "need at least one sample");
    let t = (s as f64 - 1.0) * chi.sqrt();
    (-t).exp() * (1.0 + t)
}

/// Exact probability that `s` iid samples from μ are all distinct,
/// computed by the permanent-style recursion over the PMF. Exponential in
/// general; we use the standard product formula for the uniform
/// distribution and a Monte-Carlo fallback elsewhere, so this function is
/// restricted to the uniform case where it is exact and cheap:
/// `Π_{i=0}^{s-1} (1 − i/n)`.
///
/// Never panics: `s > n` makes the product trivially zero and the
/// function returns `0.0` (the pigeonhole answer) for that case.
pub fn uniform_all_distinct_probability(n: usize, s: usize) -> f64 {
    if s > n {
        return 0.0;
    }
    let n = n as f64;
    let mut p = 1.0;
    for i in 0..s {
        p *= 1.0 - i as f64 / n;
    }
    p
}

/// Number of colliding (unordered) pairs among `samples`.
///
/// This is the statistic counted by the classic collision tester:
/// `Σ_x C(count(x), 2)`.
pub fn collision_pair_count(samples: &[usize]) -> u64 {
    let mut sorted: Vec<usize> = samples.to_vec();
    sorted.sort_unstable();
    let mut pairs: u64 = 0;
    let mut run = 1u64;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            pairs += run * (run - 1) / 2;
            run = 1;
        }
    }
    pairs += run * (run - 1) / 2;
    pairs
}

/// Whether `samples` contains at least one collision (two equal values).
///
/// This is the single bit the paper's gap tester A_δ observes. Runs in
/// O(s log s) (sorting); for the tiny sample sets the tester uses this is
/// faster than hashing. Monte-Carlo loops that call this millions of
/// times should use [`CollisionScratch::has_collision`] instead, which is
/// O(s) and allocation-free in the steady state.
pub fn has_collision(samples: &[usize]) -> bool {
    let mut sorted: Vec<usize> = samples.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

/// Domain size at which the scratch abandons the generation-stamp table
/// for the u64 bitset: above this, the 4-byte-per-element stamp table
/// (2 MiB at the cutoff) spills L2 and its single-pass advantage drowns
/// in cache misses, while the bitset stays 32× smaller.
const STAMP_LIMIT: usize = 1 << 19;

/// Reusable O(s) collision detector.
///
/// Two marking-table layouts, chosen by the sample values seen:
///
/// * **Generation stamps** (domains below the 2^19 `STAMP_LIMIT`): a u32 stamp
///   per value; a value is "seen this call" iff its stamp equals the
///   current generation, so each sample costs one load-compare-store
///   and there is **no clearing pass** — advancing the generation
///   invalidates every stamp at once. On the (rare) u32 wrap-around the
///   table is re-zeroed to keep stale stamps from aliasing.
/// * **u64 bitset** (first value at or past the cutoff switches the
///   scratch over for good): one *bit* per value, test-and-set per
///   sample, then clear exactly the bits touched by re-walking the
///   visited prefix. Two passes instead of one, but the table is 32×
///   smaller — 128 KiB at `n = 2^20` where stamps would be 4 MiB.
///
/// The cutoff is measured, not aesthetic: on the benchmark box the
/// one-pass stamp table is ~1.4× faster than the bitset while it fits
/// in L2 (`n ≤ 2^18`) and only reaches parity at `n = 2^20`, where the
/// bitset's cache residency pays for its second pass. Both layouts are
/// O(s) per call and allocation-free in the steady state.
///
/// ```rust
/// use dut_distributions::collision::CollisionScratch;
///
/// let mut scratch = CollisionScratch::new();
/// assert!(!scratch.has_collision(&[3, 1, 4, 2]));
/// assert!(scratch.has_collision(&[3, 1, 4, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct CollisionScratch {
    table: Table,
}

#[derive(Debug, Clone)]
enum Table {
    Stamps { stamps: Vec<u32>, generation: u32 },
    Bits { words: Vec<u64> },
}

impl Default for CollisionScratch {
    fn default() -> Self {
        CollisionScratch {
            table: Table::Stamps {
                stamps: Vec::new(),
                generation: 0,
            },
        }
    }
}

impl CollisionScratch {
    /// Creates an empty scratch; the marking table grows on first use.
    pub fn new() -> Self {
        CollisionScratch::default()
    }

    /// Creates a scratch pre-sized for sample values in `0..domain_size`,
    /// avoiding even the first-call growth.
    pub fn with_domain(domain_size: usize) -> Self {
        let table = if domain_size > STAMP_LIMIT {
            Table::Bits {
                words: vec![0; domain_size.div_ceil(64)],
            }
        } else {
            Table::Stamps {
                stamps: vec![0; domain_size],
                generation: 0,
            }
        };
        CollisionScratch { table }
    }

    /// Whether `samples` contains at least one collision. Agrees exactly
    /// with [`has_collision`].
    pub fn has_collision(&mut self, samples: &[usize]) -> bool {
        let start = match &mut self.table {
            Table::Stamps { stamps, generation } => {
                *generation = generation.wrapping_add(1);
                if *generation == 0 {
                    // Wrapped: stamps from 2^32 calls ago would alias
                    // the new generation. Re-zero and restart.
                    for s in stamps.iter_mut() {
                        *s = 0;
                    }
                    *generation = 1;
                }
                let generation = *generation;
                let mut oversized_at = None;
                for (k, &x) in samples.iter().enumerate() {
                    if x >= stamps.len() {
                        if x >= STAMP_LIMIT {
                            oversized_at = Some(k);
                            break;
                        }
                        stamps.resize(x + 1, 0);
                    }
                    if stamps[x] == generation {
                        return true;
                    }
                    stamps[x] = generation;
                }
                let Some(k) = oversized_at else { return false };
                // A value past the stamp ceiling: switch to the bitset
                // permanently. samples[..k] is collision-free, so
                // re-marking it as bits and scanning on from k sees
                // exactly the state the stamp pass had built.
                let hi = samples.iter().copied().max().unwrap_or(0);
                let mut words = vec![0u64; (hi + 1).div_ceil(64)];
                for &y in &samples[..k] {
                    words[y >> 6] |= 1u64 << (y & 63);
                }
                self.table = Table::Bits { words };
                k
            }
            Table::Bits { .. } => 0,
        };
        let Table::Bits { words } = &mut self.table else {
            unreachable!("stamp arm either returned or installed the bitset")
        };
        Self::bits_scan(words, samples, start)
    }

    /// Bitset scan over `samples[start..]`, with `samples[..start]`
    /// (known collision-free) already marked. Always restores the
    /// all-zero invariant before returning.
    fn bits_scan(words: &mut Vec<u64>, samples: &[usize], start: usize) -> bool {
        for (k, &x) in samples.iter().enumerate().skip(start) {
            let word = x >> 6;
            let bit = 1u64 << (x & 63);
            if word >= words.len() {
                words.resize(word + 1, 0);
            }
            if words[word] & bit != 0 {
                // The colliding value was set by an earlier sample, so
                // clearing the prefix we walked (samples[..k]) resets
                // every touched bit, this one included.
                Self::clear_marks(words, &samples[..k]);
                return true;
            }
            words[word] |= bit;
        }
        Self::clear_marks(words, samples);
        false
    }

    /// Clears the bits of every value in `marked`, restoring the
    /// all-zero invariant. Each value's bit is known to be set (or
    /// already cleared by a duplicate — clearing twice is idempotent).
    fn clear_marks(words: &mut [u64], marked: &[usize]) {
        for &x in marked {
            words[x >> 6] &= !(1u64 << (x & 63));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{heavy_set_far, paninski_far, point_mass_mixture, step_far};

    #[test]
    fn uniform_chi_is_one_over_n() {
        let u = DiscreteDistribution::uniform(64);
        assert!((collision_probability(&u) - 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn point_mass_chi_is_one() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0, 0.0]).unwrap();
        assert!((collision_probability(&d) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lemma_3_2_holds_for_all_families() {
        let n = 1024;
        for &eps in &[0.1, 0.3, 0.5] {
            for d in [
                paninski_far(n, eps).unwrap(),
                heavy_set_far(n, eps).unwrap(),
                point_mass_mixture(n, eps, 0).unwrap(),
                step_far(n, eps).unwrap(),
            ] {
                assert!(
                    satisfies_lemma_3_2(&d, eps),
                    "lemma 3.2 violated at eps={eps}, chi={}",
                    collision_probability(&d)
                );
            }
        }
    }

    #[test]
    fn paninski_is_the_extremal_family() {
        // The Paninski family achieves the Lemma 3.2 bound with equality.
        let n = 512;
        let eps = 0.5;
        let d = paninski_far(n, eps).unwrap();
        assert!((collision_probability(&d) - lemma_3_2_bound(n, eps)).abs() < 1e-15);
    }

    #[test]
    fn wiener_bound_dominates_exact_uniform_probability() {
        // Lemma 3.3 must upper-bound the exact all-distinct probability.
        for n in [64usize, 256, 1024] {
            for s in [2usize, 4, 8, 16, 32] {
                let exact = uniform_all_distinct_probability(n, s);
                let bound = wiener_no_collision_upper_bound(s, 1.0 / n as f64);
                assert!(
                    bound >= exact - 1e-12,
                    "n={n}, s={s}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn wiener_bound_is_at_most_one() {
        for s in [1usize, 2, 10, 100] {
            for &chi in &[0.0, 0.001, 0.5, 1.0] {
                let b = wiener_no_collision_upper_bound(s, chi);
                assert!(b <= 1.0 + 1e-12);
                assert!(b >= 0.0);
            }
        }
    }

    #[test]
    fn uniform_all_distinct_edge_cases() {
        assert_eq!(uniform_all_distinct_probability(10, 1), 1.0);
        assert_eq!(uniform_all_distinct_probability(10, 11), 0.0);
        // s = n: probability n!/n^n.
        let p = uniform_all_distinct_probability(3, 3);
        assert!((p - 6.0 / 27.0).abs() < 1e-15);
    }

    #[test]
    fn collision_pair_count_examples() {
        assert_eq!(collision_pair_count(&[]), 0);
        assert_eq!(collision_pair_count(&[1]), 0);
        assert_eq!(collision_pair_count(&[1, 2, 3]), 0);
        assert_eq!(collision_pair_count(&[1, 1]), 1);
        assert_eq!(collision_pair_count(&[1, 1, 1]), 3);
        assert_eq!(collision_pair_count(&[2, 1, 2, 1]), 2);
        assert_eq!(collision_pair_count(&[5, 5, 5, 5]), 6);
    }

    #[test]
    fn has_collision_examples() {
        assert!(!has_collision(&[]));
        assert!(!has_collision(&[7]));
        assert!(!has_collision(&[3, 1, 4, 2]));
        assert!(has_collision(&[3, 1, 4, 1]));
    }

    #[test]
    fn has_collision_agrees_with_pair_count() {
        let cases: &[&[usize]] = &[&[], &[1], &[1, 2], &[2, 2], &[1, 2, 3, 2, 1]];
        for c in cases {
            assert_eq!(has_collision(c), collision_pair_count(c) > 0);
        }
    }

    #[test]
    fn collision_scratch_agrees_with_sort_detector() {
        let mut scratch = CollisionScratch::new();
        let cases: &[&[usize]] = &[
            &[],
            &[7],
            &[3, 1, 4, 2],
            &[3, 1, 4, 1],
            &[0, 0],
            &[1023, 0, 1023],
            &[5, 6, 7, 8, 9, 5],
        ];
        // Repeat each case so generations interleave — stale stamps from
        // a previous call must never leak into the next.
        for _ in 0..3 {
            for c in cases {
                assert_eq!(scratch.has_collision(c), has_collision(c), "case {c:?}");
            }
        }
    }

    #[test]
    fn collision_scratch_with_domain_and_growth() {
        let mut pre = CollisionScratch::with_domain(16);
        assert!(!pre.has_collision(&[0, 15]));
        // A value past the pre-sized domain forces growth, not a panic.
        assert!(!pre.has_collision(&[100, 15]));
        assert!(pre.has_collision(&[100, 100]));
    }

    #[test]
    fn collision_scratch_survives_generation_wrap() {
        let mut scratch = CollisionScratch {
            table: Table::Stamps {
                stamps: vec![u32::MAX - 1; 4],
                generation: u32::MAX - 1,
            },
        };
        // Next call advances to u32::MAX, the one after wraps to 0 and
        // must re-zero rather than alias old stamps.
        assert!(!scratch.has_collision(&[0, 1]));
        assert!(!scratch.has_collision(&[0, 1]));
        assert!(scratch.has_collision(&[2, 2]));
    }

    #[test]
    fn collision_scratch_clears_bitset_marks_after_early_return() {
        // Bitset mode: an early collision return must not leave stale
        // bits behind — value B+5's mark from the colliding call would
        // otherwise make the next (collision-free) call report a
        // phantom collision.
        const B: usize = STAMP_LIMIT;
        let mut scratch = CollisionScratch::with_domain(B + 128);
        assert!(matches!(scratch.table, Table::Bits { .. }));
        assert!(scratch.has_collision(&[B + 5, B + 9, B + 5, B + 70]));
        assert!(!scratch.has_collision(&[B + 5, B + 9, B + 70]));
        // Same for the immediate-duplicate shape, where the colliding
        // bit belongs to the prefix being cleared.
        assert!(scratch.has_collision(&[B + 64, B + 64, B + 3]));
        assert!(!scratch.has_collision(&[B + 64, B + 3]));
    }

    #[test]
    fn collision_scratch_word_boundaries() {
        // Values straddling u64 word edges must not alias each other
        // (bitset mode; small domains use per-value stamps).
        let mut scratch = CollisionScratch::with_domain(STAMP_LIMIT + 256);
        assert!(!scratch.has_collision(&[63, 64, 127, 128, 191, 192]));
        assert!(scratch.has_collision(&[63, 64, 63]));
        assert!(!scratch.has_collision(&[0, 255]));
    }

    #[test]
    fn collision_scratch_converts_to_bitset_mid_call() {
        // A value past the stamp ceiling flips the table to the bitset
        // *within* the call; marks made by the stamp pass must carry
        // over so collisions across the switch are still caught.
        let mut scratch = CollisionScratch::new();
        assert!(!scratch.has_collision(&[1, 2, 3]));
        assert!(matches!(scratch.table, Table::Stamps { .. }));
        assert!(scratch.has_collision(&[7, 11, STAMP_LIMIT + 1, 7]));
        assert!(matches!(scratch.table, Table::Bits { .. }));
        // The pre-switch mark (7) collides with a post-switch sample.
        assert!(scratch.has_collision(&[7, STAMP_LIMIT + 9, 7]));
        // The switch is permanent and the invariant survives it.
        assert!(!scratch.has_collision(&[7, 11, STAMP_LIMIT + 1]));
        assert!(scratch.has_collision(&[STAMP_LIMIT + 1, STAMP_LIMIT + 1]));
        assert!(!scratch.has_collision(&[1, 2, 3]));
    }

    #[test]
    fn collision_scratch_modes_agree_on_shared_domains() {
        // The two layouts are an implementation detail: on values both
        // can represent they must return identical verdicts.
        let cases: &[&[usize]] = &[
            &[],
            &[7],
            &[3, 1, 4, 2],
            &[3, 1, 4, 1],
            &[0, 0],
            &[1023, 0, 1023],
            &[63, 64, 63],
        ];
        let mut stamps = CollisionScratch::with_domain(1024);
        let mut bits = CollisionScratch::with_domain(STAMP_LIMIT + 1024);
        assert!(matches!(stamps.table, Table::Stamps { .. }));
        assert!(matches!(bits.table, Table::Bits { .. }));
        for _ in 0..3 {
            for c in cases {
                assert_eq!(stamps.has_collision(c), bits.has_collision(c), "case {c:?}");
            }
        }
    }
}
