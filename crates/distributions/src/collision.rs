//! Collision statistics: the engine of collision-based uniformity testing.
//!
//! The *collision probability* of a distribution μ is
//! `χ(μ) = Pr_{X,Y∼μ}[X = Y] = Σ_x μ(x)²`. The uniform distribution on n
//! elements minimizes it at `1/n`; the paper's Lemma 3.2 shows any
//! distribution ε-far from uniform has `χ > (1 + ε²)/n`. The paper's
//! Lemma 3.3 (due to Wiener) bounds the probability that `s` iid samples
//! contain *no* collision — the single event the gap tester observes.

use crate::dist::DiscreteDistribution;

/// Collision probability `χ(μ) = Σ_x μ(x)²`.
///
/// # Example
///
/// ```rust
/// use dut_distributions::DiscreteDistribution;
/// use dut_distributions::collision::collision_probability;
///
/// let u = DiscreteDistribution::uniform(100);
/// assert!((collision_probability(&u) - 0.01).abs() < 1e-15);
/// ```
pub fn collision_probability(mu: &DiscreteDistribution) -> f64 {
    mu.pmf_slice().iter().map(|&p| p * p).sum()
}

/// The Lemma 3.2 lower bound on collision probability for an ε-far
/// distribution: `(1 + ε²)/n`.
pub fn lemma_3_2_bound(n: usize, epsilon: f64) -> f64 {
    (1.0 + epsilon * epsilon) / n as f64
}

/// Checks Lemma 3.2 for a concrete distribution: if `mu` is ε-far from
/// uniform then `χ(μ) ≥ (1 + ε²)/n` (the paper states strict inequality;
/// extremal families achieve equality up to floating point, so we test
/// with a small tolerance).
pub fn satisfies_lemma_3_2(mu: &DiscreteDistribution, epsilon: f64) -> bool {
    collision_probability(mu) >= lemma_3_2_bound(mu.domain_size(), epsilon) - 1e-12
}

/// The Wiener birthday bound (the paper's Lemma 3.3): for any distribution
/// with collision probability `chi`, the probability that `s` iid samples
/// are all distinct is at most
/// `e^{−(s−1)√χ} · (1 + (s−1)√χ)`.
///
/// # Panics
///
/// Panics if `chi` is not in `[0, 1]` or `s == 0`.
pub fn wiener_no_collision_upper_bound(s: usize, chi: f64) -> f64 {
    assert!((0.0..=1.0).contains(&chi), "chi must be a probability");
    assert!(s > 0, "need at least one sample");
    let t = (s as f64 - 1.0) * chi.sqrt();
    (-t).exp() * (1.0 + t)
}

/// Exact probability that `s` iid samples from μ are all distinct,
/// computed by the permanent-style recursion over the PMF. Exponential in
/// general; we use the standard product formula for the uniform
/// distribution and a Monte-Carlo fallback elsewhere, so this function is
/// restricted to the uniform case where it is exact and cheap:
/// `Π_{i=0}^{s-1} (1 − i/n)`.
///
/// Never panics: `s > n` makes the product trivially zero and the
/// function returns `0.0` (the pigeonhole answer) for that case.
pub fn uniform_all_distinct_probability(n: usize, s: usize) -> f64 {
    if s > n {
        return 0.0;
    }
    let n = n as f64;
    let mut p = 1.0;
    for i in 0..s {
        p *= 1.0 - i as f64 / n;
    }
    p
}

/// Number of colliding (unordered) pairs among `samples`.
///
/// This is the statistic counted by the classic collision tester:
/// `Σ_x C(count(x), 2)`.
pub fn collision_pair_count(samples: &[usize]) -> u64 {
    let mut sorted: Vec<usize> = samples.to_vec();
    sorted.sort_unstable();
    let mut pairs: u64 = 0;
    let mut run = 1u64;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            pairs += run * (run - 1) / 2;
            run = 1;
        }
    }
    pairs += run * (run - 1) / 2;
    pairs
}

/// Whether `samples` contains at least one collision (two equal values).
///
/// This is the single bit the paper's gap tester A_δ observes. Runs in
/// O(s log s) (sorting); for the tiny sample sets the tester uses this is
/// faster than hashing. Monte-Carlo loops that call this millions of
/// times should use [`CollisionScratch::has_collision`] instead, which is
/// O(s) and allocation-free in the steady state.
pub fn has_collision(samples: &[usize]) -> bool {
    let mut sorted: Vec<usize> = samples.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

/// Reusable O(s) collision detector.
///
/// Keeps a generation-stamped marking table indexed by sample value: a
/// value is "seen this call" iff its stamp equals the current
/// generation, so detecting a collision among `s` samples costs O(s)
/// with **no clearing and no allocation** once the table has grown to
/// the domain size. Advancing the generation invalidates all stamps at
/// once; on the (rare) u32 wrap-around the table is re-zeroed to keep
/// stale stamps from aliasing.
///
/// ```rust
/// use dut_distributions::collision::CollisionScratch;
///
/// let mut scratch = CollisionScratch::new();
/// assert!(!scratch.has_collision(&[3, 1, 4, 2]));
/// assert!(scratch.has_collision(&[3, 1, 4, 1]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CollisionScratch {
    stamps: Vec<u32>,
    generation: u32,
}

impl CollisionScratch {
    /// Creates an empty scratch; the marking table grows on first use.
    pub fn new() -> Self {
        CollisionScratch::default()
    }

    /// Creates a scratch pre-sized for sample values in `0..domain_size`,
    /// avoiding even the first-call growth.
    pub fn with_domain(domain_size: usize) -> Self {
        CollisionScratch {
            stamps: vec![0; domain_size],
            generation: 0,
        }
    }

    /// Whether `samples` contains at least one collision. Agrees exactly
    /// with [`has_collision`].
    pub fn has_collision(&mut self, samples: &[usize]) -> bool {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: stamps from 2^32 calls ago would alias the new
            // generation. Re-zero and restart.
            for s in &mut self.stamps {
                *s = 0;
            }
            self.generation = 1;
        }
        let generation = self.generation;
        for &x in samples {
            if x >= self.stamps.len() {
                self.stamps.resize(x + 1, 0);
            }
            if self.stamps[x] == generation {
                return true;
            }
            self.stamps[x] = generation;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{heavy_set_far, paninski_far, point_mass_mixture, step_far};

    #[test]
    fn uniform_chi_is_one_over_n() {
        let u = DiscreteDistribution::uniform(64);
        assert!((collision_probability(&u) - 1.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn point_mass_chi_is_one() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0, 0.0]).unwrap();
        assert!((collision_probability(&d) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lemma_3_2_holds_for_all_families() {
        let n = 1024;
        for &eps in &[0.1, 0.3, 0.5] {
            for d in [
                paninski_far(n, eps).unwrap(),
                heavy_set_far(n, eps).unwrap(),
                point_mass_mixture(n, eps, 0).unwrap(),
                step_far(n, eps).unwrap(),
            ] {
                assert!(
                    satisfies_lemma_3_2(&d, eps),
                    "lemma 3.2 violated at eps={eps}, chi={}",
                    collision_probability(&d)
                );
            }
        }
    }

    #[test]
    fn paninski_is_the_extremal_family() {
        // The Paninski family achieves the Lemma 3.2 bound with equality.
        let n = 512;
        let eps = 0.5;
        let d = paninski_far(n, eps).unwrap();
        assert!((collision_probability(&d) - lemma_3_2_bound(n, eps)).abs() < 1e-15);
    }

    #[test]
    fn wiener_bound_dominates_exact_uniform_probability() {
        // Lemma 3.3 must upper-bound the exact all-distinct probability.
        for n in [64usize, 256, 1024] {
            for s in [2usize, 4, 8, 16, 32] {
                let exact = uniform_all_distinct_probability(n, s);
                let bound = wiener_no_collision_upper_bound(s, 1.0 / n as f64);
                assert!(
                    bound >= exact - 1e-12,
                    "n={n}, s={s}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn wiener_bound_is_at_most_one() {
        for s in [1usize, 2, 10, 100] {
            for &chi in &[0.0, 0.001, 0.5, 1.0] {
                let b = wiener_no_collision_upper_bound(s, chi);
                assert!(b <= 1.0 + 1e-12);
                assert!(b >= 0.0);
            }
        }
    }

    #[test]
    fn uniform_all_distinct_edge_cases() {
        assert_eq!(uniform_all_distinct_probability(10, 1), 1.0);
        assert_eq!(uniform_all_distinct_probability(10, 11), 0.0);
        // s = n: probability n!/n^n.
        let p = uniform_all_distinct_probability(3, 3);
        assert!((p - 6.0 / 27.0).abs() < 1e-15);
    }

    #[test]
    fn collision_pair_count_examples() {
        assert_eq!(collision_pair_count(&[]), 0);
        assert_eq!(collision_pair_count(&[1]), 0);
        assert_eq!(collision_pair_count(&[1, 2, 3]), 0);
        assert_eq!(collision_pair_count(&[1, 1]), 1);
        assert_eq!(collision_pair_count(&[1, 1, 1]), 3);
        assert_eq!(collision_pair_count(&[2, 1, 2, 1]), 2);
        assert_eq!(collision_pair_count(&[5, 5, 5, 5]), 6);
    }

    #[test]
    fn has_collision_examples() {
        assert!(!has_collision(&[]));
        assert!(!has_collision(&[7]));
        assert!(!has_collision(&[3, 1, 4, 2]));
        assert!(has_collision(&[3, 1, 4, 1]));
    }

    #[test]
    fn has_collision_agrees_with_pair_count() {
        let cases: &[&[usize]] = &[&[], &[1], &[1, 2], &[2, 2], &[1, 2, 3, 2, 1]];
        for c in cases {
            assert_eq!(has_collision(c), collision_pair_count(c) > 0);
        }
    }

    #[test]
    fn collision_scratch_agrees_with_sort_detector() {
        let mut scratch = CollisionScratch::new();
        let cases: &[&[usize]] = &[
            &[],
            &[7],
            &[3, 1, 4, 2],
            &[3, 1, 4, 1],
            &[0, 0],
            &[1023, 0, 1023],
            &[5, 6, 7, 8, 9, 5],
        ];
        // Repeat each case so generations interleave — stale stamps from
        // a previous call must never leak into the next.
        for _ in 0..3 {
            for c in cases {
                assert_eq!(scratch.has_collision(c), has_collision(c), "case {c:?}");
            }
        }
    }

    #[test]
    fn collision_scratch_with_domain_and_growth() {
        let mut pre = CollisionScratch::with_domain(16);
        assert!(!pre.has_collision(&[0, 15]));
        // A value past the pre-sized domain forces growth, not a panic.
        assert!(!pre.has_collision(&[100, 15]));
        assert!(pre.has_collision(&[100, 100]));
    }

    #[test]
    fn collision_scratch_survives_generation_wrap() {
        let mut scratch = CollisionScratch {
            stamps: vec![u32::MAX - 1; 4],
            generation: u32::MAX - 1,
        };
        // Next call advances to u32::MAX, the one after wraps to 0 and
        // must re-zero rather than alias old stamps.
        assert!(!scratch.has_collision(&[0, 1]));
        assert!(!scratch.has_collision(&[0, 1]));
        assert!(scratch.has_collision(&[2, 2]));
    }
}
