//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! The alias method preprocesses a probability mass function over
//! `{0, .., n-1}` into two tables (`prob` and `alias`) in O(n) time.
//! Sampling then draws one uniform index and one uniform real, which is
//! optimal. This is internal machinery for
//! [`DiscreteDistribution`](crate::DiscreteDistribution).

use rand::Rng;

/// Preprocessed alias tables for a discrete distribution.
#[derive(Debug, Clone)]
pub(crate) struct AliasTable {
    /// Acceptance probability of each column (scaled to [0, 1]).
    prob: Vec<f64>,
    /// Alias (fallback index) of each column.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the alias table from non-negative weights.
    ///
    /// Weights need not be normalized; they are normalized internally.
    /// Panics if the weight vector is empty or sums to a non-positive
    /// or non-finite value — callers ([`DiscreteDistribution`])
    /// validate first. The finiteness assert matters: a `+inf` total
    /// (one infinite weight, or finite weights whose sum overflows)
    /// would make `scale == 0` and silently degenerate the sampler, so
    /// it must fail loudly here rather than sample from the wrong
    /// distribution.
    ///
    /// [`DiscreteDistribution`]: crate::DiscreteDistribution
    pub(crate) fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table domain exceeds u32 range"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table weights must have positive sum");
        assert!(
            total.is_finite(),
            "alias table weights must have a finite sum"
        );

        // Scale so the average column is exactly 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();

        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];

        // Classic two-stack (small/large) construction.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // Large column donates mass to fill the small column up to 1.
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: all remaining columns are full.
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Draws one sample in O(1).
    #[inline]
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of columns (domain size).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.prob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, trials: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / trials as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 8]);
        let freqs = empirical(&table, 200_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "frequency {f} too far from 1/8");
        }
    }

    #[test]
    fn skewed_weights_match_expectations() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freqs = empirical(&table, 400_000, 2);
        for (i, f) in freqs.iter().enumerate() {
            let expected = weights[i] / 10.0;
            assert!(
                (f - expected).abs() < 0.01,
                "index {i}: frequency {f} vs expected {expected}"
            );
        }
    }

    #[test]
    fn single_element_always_sampled() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_elements_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight index {s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        // Sum is 100, not 1 — sampling must still follow the ratios.
        let table = AliasTable::new(&[25.0, 75.0]);
        let freqs = empirical(&table, 100_000, 5);
        assert!((freqs[0] - 0.25).abs() < 0.01);
        assert!((freqs[1] - 0.75).abs() < 0.01);
    }
}
