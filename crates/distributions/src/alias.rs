//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! The alias method preprocesses a probability mass function over
//! `{0, .., n-1}` into a column table in O(n) time. Sampling then
//! draws one uniform index and one uniform real, which is optimal.
//! This is internal machinery for
//! [`DiscreteDistribution`](crate::DiscreteDistribution).
//!
//! Layout: each column stores its acceptance probability and alias
//! side by side ([`Column`]), so a draw touches **one** table slot —
//! one bounds check, one cache line — instead of parallel `prob[i]` /
//! `alias[i]` arrays costing two of each. Construction normalizes the
//! weights *during* the small/large classification pass rather than in
//! a separate scaled-copy pass (the column table doubles as the
//! working residual array).
//!
//! [`AliasTable::sample_batch`] is the batched kernel. The
//! accept-or-alias choice is resolved by indexing the column's
//! [`Column::pick`] pair with the comparison bit rather than by an
//! `if`/select: the pair lives in the heap table, so the compiled code
//! is a load whose *address* depends on the comparison — branchless by
//! construction. Writing the choice as a select is ~2.4× slower here:
//! LLVM lowers a select that feeds a store to a conditional branch,
//! and `frac < prob` is a coin flip per draw, so that branch
//! mispredicts constantly (measured ~17 vs ~7 cycles/draw on a
//! baseline-x86-64 Xeon). For the same reason the kernel deliberately
//! draws its `u64`s serially per sample instead of pre-filling a lane
//! buffer: without AVX-512, autovectorizing SplitMix64 synthesizes
//! each 64-bit vector multiply from three 32×32 `pmuludq`s and is
//! slower than native scalar `imul`.
//!
//! The draws consumed per sample — one index word, one fraction word,
//! in that order — replicate [`AliasTable::sample`]'s exactly, so for
//! any `RngCore` the batched path is bit-identical to a loop of scalar
//! draws.

use rand::Rng;

/// One alias column: acceptance probability and the two candidate
/// outcomes of a draw, laid out for branchless indexing.
#[derive(Debug, Clone, Copy)]
struct Column {
    /// Acceptance probability of this column (scaled to [0, 1]).
    prob: f64,
    /// `pick[1]` is the column's own index (chosen when the fraction
    /// draw lands below `prob`), `pick[0]` the alias fallback; columns
    /// with `prob == 1.0` never consult `pick[0]` and self-alias. A
    /// draw computes `pick[(frac < prob) as usize]` — one load at a
    /// comparison-dependent address, no select, no branch.
    pick: [u32; 2],
}

/// Preprocessed alias table for a discrete distribution.
#[derive(Debug, Clone)]
pub(crate) struct AliasTable {
    cols: Vec<Column>,
}

impl AliasTable {
    /// Builds the alias table from non-negative weights.
    ///
    /// Weights need not be normalized; they are normalized internally.
    /// Panics if the weight vector is empty or sums to a non-positive
    /// or non-finite value — callers ([`DiscreteDistribution`])
    /// validate first. The finiteness assert matters: a `+inf` total
    /// (one infinite weight, or finite weights whose sum overflows)
    /// would make `scale == 0` and silently degenerate the sampler, so
    /// it must fail loudly here rather than sample from the wrong
    /// distribution.
    ///
    /// [`DiscreteDistribution`]: crate::DiscreteDistribution
    pub(crate) fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table domain exceeds u32 range"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table weights must have positive sum");
        assert!(
            total.is_finite(),
            "alias table weights must have a finite sum"
        );

        // Scale so the average column is exactly 1. The scaling is
        // folded into the classification pass below — `cols[i].prob`
        // starts as the scaled weight and doubles as the residual-mass
        // working array, so there is no separate normalized copy.
        let scale = n as f64 / total;
        let mut cols: Vec<Column> = Vec::with_capacity(n);
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            let scaled = w * scale;
            cols.push(Column {
                prob: scaled,
                pick: [i as u32, i as u32],
            });
            if scaled < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        // Classic two-stack (small/large) construction.
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            // The small column keeps its residual as its acceptance
            // probability and points at the donor.
            cols[s as usize].pick[0] = l;
            // Large column donates mass to fill the small column up to 1.
            let donated = (cols[l as usize].prob + cols[s as usize].prob) - 1.0;
            cols[l as usize].prob = donated;
            if donated < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: all remaining columns are full.
        for l in large {
            cols[l as usize].prob = 1.0;
        }
        for s in small {
            cols[s as usize].prob = 1.0;
        }

        AliasTable { cols }
    }

    /// Draws one sample in O(1).
    #[inline]
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.cols.len());
        let col = &self.cols[i];
        col.pick[(rng.gen::<f64>() < col.prob) as usize] as usize
    }

    /// Fills `out` with `out.len()` samples. Per draw: one
    /// widening-multiply bounded index (the exact `gen_range(0..n)`
    /// reduction of the vendored rand), one 53-bit unit float (the
    /// exact `gen::<f64>()` map), and a [`Column::pick`] load indexed
    /// by the comparison — no data-dependent branch anywhere in the
    /// loop (see the module docs for why this beats both a select and
    /// a lane-buffered pre-fill). Bit-identical to `out.len()` scalar
    /// [`AliasTable::sample`] calls on the same generator state, for
    /// any `R` — the per-sample word order (index word, then fraction
    /// word) is the same.
    pub(crate) fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [u32]) {
        let n = self.cols.len() as u64;
        for o in out.iter_mut() {
            let i = ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as usize;
            let col = &self.cols[i];
            let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            *o = col.pick[(frac < col.prob) as usize];
        }
    }

    /// Number of columns (domain size).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, trials: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / trials as f64).collect()
    }

    /// The pre-optimization reference construction: a separate scaled
    /// copy of the weights and parallel `prob`/`alias` arrays. The
    /// production [`AliasTable::new`] must build exactly these values.
    fn reference_tables(weights: &[f64]) -> (Vec<f64>, Vec<u32>) {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().unwrap();
            let l = *large.last().unwrap();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }
        (prob, alias)
    }

    #[test]
    fn construction_matches_the_reference_two_array_build() {
        // Regression test for the folded-normalization / merged-column
        // construction: identical probs and aliases, bit for bit.
        let palettes: &[&[f64]] = &[
            &[1.0],
            &[1.0; 8],
            &[1.0, 2.0, 3.0, 4.0],
            &[0.0, 1.0, 0.0, 1.0],
            &[25.0, 75.0],
            &[1e-12, 1.0, 1e12],
            &[0.3, 0.3, 0.4, 1e-9, 7.0, 0.0, 2.5],
        ];
        for weights in palettes {
            let table = AliasTable::new(weights);
            let (prob, alias) = reference_tables(weights);
            for (i, col) in table.cols.iter().enumerate() {
                assert_eq!(
                    col.prob.to_bits(),
                    prob[i].to_bits(),
                    "prob[{i}] for {weights:?}"
                );
                assert_eq!(col.pick[1], i as u32, "pick[1] for {weights:?}");
                if prob[i] < 1.0 {
                    assert_eq!(col.pick[0], alias[i], "alias[{i}] for {weights:?}");
                }
            }
        }
    }

    #[test]
    fn batched_draws_are_bit_identical_to_scalar() {
        let table = AliasTable::new(&[1.0, 2.0, 3.0, 4.0, 0.5, 9.0, 0.0, 1.5]);
        for seed in [0u64, 1, 7, 12345] {
            // StdRng: the default (bit-identical) path.
            let mut scalar = StdRng::seed_from_u64(seed);
            let expect: Vec<u32> = (0..100).map(|_| table.sample(&mut scalar) as u32).collect();
            let mut batched = StdRng::seed_from_u64(seed);
            let mut got = vec![0u32; 100];
            table.sample_batch(&mut batched, &mut got);
            assert_eq!(got, expect, "StdRng seed {seed}");
            // BatchRng: the fast-sampling stream must agree with its
            // own scalar draws too.
            let mut scalar = BatchRng::new(seed);
            let expect: Vec<u32> = (0..100).map(|_| table.sample(&mut scalar) as u32).collect();
            let mut batched = BatchRng::new(seed);
            table.sample_batch(&mut batched, &mut got);
            assert_eq!(got, expect, "BatchRng seed {seed}");
        }
    }

    #[test]
    fn batched_draws_leave_the_rng_in_the_scalar_state() {
        use rand::RngCore;
        let table = AliasTable::new(&[2.0, 1.0, 1.0]);
        let mut a = StdRng::seed_from_u64(8);
        let mut buf = vec![0u32; 37]; // deliberately not a LANES multiple
        table.sample_batch(&mut a, &mut buf);
        let mut b = StdRng::seed_from_u64(8);
        for _ in 0..37 {
            table.sample(&mut b);
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 8]);
        let freqs = empirical(&table, 200_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "frequency {f} too far from 1/8");
        }
    }

    #[test]
    fn skewed_weights_match_expectations() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freqs = empirical(&table, 400_000, 2);
        for (i, f) in freqs.iter().enumerate() {
            let expected = weights[i] / 10.0;
            assert!(
                (f - expected).abs() < 0.01,
                "index {i}: frequency {f} vs expected {expected}"
            );
        }
    }

    #[test]
    fn single_element_always_sampled() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_elements_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight index {s}");
        }
        let mut out = vec![0u32; 10_000];
        table.sample_batch(&mut StdRng::seed_from_u64(5), &mut out);
        assert!(out.iter().all(|&s| s == 1 || s == 3));
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        // Sum is 100, not 1 — sampling must still follow the ratios.
        let table = AliasTable::new(&[25.0, 75.0]);
        let freqs = empirical(&table, 100_000, 5);
        assert!((freqs[0] - 0.25).abs() < 0.01);
        assert!((freqs[1] - 0.75).abs() < 0.01);
    }
}
