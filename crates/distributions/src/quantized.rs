//! Quantized continuous distributions — the paper's sensor scenario.
//!
//! The introduction motivates testing with "a sensor network monitoring
//! temperatures at a manufacturing plant, with their measurements
//! subject to Gaussian noise": each sensor reading is a continuous
//! value quantized into one of `n` buckets, and the network tests
//! whether the live bucket distribution still matches the commissioned
//! reference (identity testing — which §1 reduces to uniformity via the
//! filter).
//!
//! [`QuantizedGaussian`] builds the exact bucket distribution of
//! `N(mean, sigma²)` clipped to a range and quantized into `n` equal
//! buckets, so experiments can construct both the reference and drifted
//! variants (mean shift, variance growth) with known L1 distances.

use crate::dist::DiscreteDistribution;
use crate::error::DistributionError;

/// The standard normal CDF Φ, via the Abramowitz–Stegun 7.1.26 erf
/// approximation (absolute error < 1.5e-7 — far below the bucket
/// granularity of any quantization).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

/// The error function, Abramowitz–Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t) * (-x * x).exp();
    sign * y
}

/// A Gaussian measurement model quantized into `n` equal buckets over
/// `[lo, hi]` (probability mass outside the range is clipped into the
/// boundary buckets, as a saturating sensor would).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGaussian {
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    n: usize,
}

impl QuantizedGaussian {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`DistributionError::InvalidParameter`] for non-positive
    /// `sigma`, an empty range, or `n == 0`.
    pub fn new(
        n: usize,
        mean: f64,
        sigma: f64,
        lo: f64,
        hi: f64,
    ) -> Result<Self, DistributionError> {
        if n == 0 {
            return Err(DistributionError::EmptyDomain);
        }
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(DistributionError::InvalidParameter {
                name: "sigma",
                value: sigma,
                expected: "sigma > 0",
            });
        }
        if lo >= hi {
            return Err(DistributionError::InvalidParameter {
                name: "range",
                value: hi - lo,
                expected: "lo < hi",
            });
        }
        Ok(QuantizedGaussian {
            mean,
            sigma,
            lo,
            hi,
            n,
        })
    }

    /// The exact bucket distribution: bucket `i` covers
    /// `[lo + i·w, lo + (i+1)·w)` with `w = (hi−lo)/n`; the first and
    /// last buckets absorb the clipped tails.
    pub fn to_distribution(&self) -> DiscreteDistribution {
        let w = (self.hi - self.lo) / self.n as f64;
        let z = |x: f64| normal_cdf((x - self.mean) / self.sigma);
        let mut pmf = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let a = self.lo + i as f64 * w;
            let b = a + w;
            let mut mass = z(b) - z(a);
            if i == 0 {
                mass += z(a) - 0.0; // left tail clips into bucket 0
            }
            if i == self.n - 1 {
                mass += 1.0 - z(b); // right tail clips into the last bucket
            }
            pmf.push(mass.max(0.0));
        }
        // Renormalize the approximation residue (|err| < 1e-6).
        let total: f64 = pmf.iter().sum();
        for p in pmf.iter_mut() {
            *p /= total;
        }
        DiscreteDistribution::from_pmf(pmf).expect("normalized by construction")
    }

    /// The same sensor with a shifted mean (calibration drift).
    pub fn with_mean(&self, mean: f64) -> QuantizedGaussian {
        QuantizedGaussian { mean, ..*self }
    }

    /// The same sensor with a different noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn with_sigma(&self, sigma: f64) -> QuantizedGaussian {
        assert!(sigma > 0.0, "sigma must be positive");
        QuantizedGaussian { sigma, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l1_distance;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        for &x in &[0.5f64, 1.0, 2.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn quantized_gaussian_is_normalized_and_unimodal() {
        let q = QuantizedGaussian::new(100, 20.0, 2.0, 10.0, 30.0).unwrap();
        let d = q.to_distribution();
        let total: f64 = d.pmf_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mode at the mean's bucket (bucket 50).
        let mode = d
            .pmf_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((49..=51).contains(&mode), "mode at {mode}");
    }

    #[test]
    fn tails_clip_into_boundary_buckets() {
        // Mean far above the range: all mass lands in the last bucket.
        let q = QuantizedGaussian::new(10, 100.0, 1.0, 0.0, 10.0).unwrap();
        let d = q.to_distribution();
        assert!(d.pmf(9) > 0.999);
    }

    #[test]
    fn mean_shift_increases_l1_distance() {
        let q = QuantizedGaussian::new(64, 0.0, 1.0, -4.0, 4.0).unwrap();
        let base = q.to_distribution();
        let small = q.with_mean(0.2).to_distribution();
        let large = q.with_mean(1.0).to_distribution();
        let d_small = l1_distance(&small, &base).unwrap();
        let d_large = l1_distance(&large, &base).unwrap();
        assert!(d_small > 0.0);
        assert!(d_large > d_small);
    }

    #[test]
    fn sigma_growth_flattens_distribution() {
        let q = QuantizedGaussian::new(64, 0.0, 1.0, -4.0, 4.0).unwrap();
        let narrow = q.to_distribution();
        let wide = q.with_sigma(3.0).to_distribution();
        // Wider noise → smaller collision probability (flatter).
        use crate::collision::collision_probability;
        assert!(collision_probability(&wide) < collision_probability(&narrow));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(QuantizedGaussian::new(0, 0.0, 1.0, 0.0, 1.0).is_err());
        assert!(QuantizedGaussian::new(10, 0.0, 0.0, 0.0, 1.0).is_err());
        assert!(QuantizedGaussian::new(10, 0.0, 1.0, 1.0, 1.0).is_err());
    }
}
