//! Information-theoretic measures: entropy, collision entropy, KL
//! divergence, and the paper's Lemma 2.1.
//!
//! Lemma 2.1 is the quantitative heart of the paper's lower bound: to
//! separate acceptance probability `1 − δ` from `1 − τδ`, a tester's
//! one-bit output must carry KL divergence at least `(δ/4)(τ − 1 − ln τ)`.
//! All logarithms here are natural.

use crate::dist::DiscreteDistribution;
use crate::error::DistributionError;

/// Shannon entropy `H(μ) = −Σ μ(x) ln μ(x)` in nats.
pub fn shannon_entropy(mu: &DiscreteDistribution) -> f64 {
    mu.pmf_slice()
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Collision (Rényi-2) entropy `H₂(μ) = −ln Σ μ(x)² = −ln χ(μ)` in nats.
///
/// High collision entropy implies low collision probability — the
/// property the paper's corrected Equality lower bound relies on (the
/// original proof in Bottesch–Gavinsky–Klauck used Shannon entropy, which
/// does not imply low collision probability; the paper fixes this by
/// switching to H₂).
pub fn collision_entropy(mu: &DiscreteDistribution) -> f64 {
    -crate::collision::collision_probability(mu).ln()
}

/// KL divergence `D(μ ‖ η) = Σ μ(x) ln(μ(x)/η(x))` in nats.
///
/// # Errors
///
/// Returns [`DistributionError::IncompatibleDomain`] on domain mismatch,
/// and [`DistributionError::InvalidParameter`] if absolute continuity
/// fails (some `x` has `μ(x) > 0` but `η(x) = 0`, making the divergence
/// infinite).
pub fn kl_divergence(
    mu: &DiscreteDistribution,
    eta: &DiscreteDistribution,
) -> Result<f64, DistributionError> {
    if mu.domain_size() != eta.domain_size() {
        return Err(DistributionError::IncompatibleDomain {
            n: eta.domain_size(),
            reason: "KL divergence requires equal domain sizes",
        });
    }
    let mut d = 0.0;
    for (x, (&p, &q)) in mu.pmf_slice().iter().zip(eta.pmf_slice()).enumerate() {
        if p > 0.0 {
            if q <= 0.0 {
                return Err(DistributionError::InvalidParameter {
                    name: "eta",
                    value: x as f64,
                    expected: "eta must dominate mu (absolute continuity)",
                });
            }
            d += p * (p / q).ln();
        }
    }
    Ok(d.max(0.0))
}

/// KL divergence between Bernoulli distributions:
/// `D(B_a ‖ B_b) = a ln(a/b) + (1−a) ln((1−a)/(1−b))` in nats.
///
/// Conventions: terms with `a ∈ {0, 1}` use `0 ln 0 = 0`; returns
/// `f64::INFINITY` when absolute continuity fails.
pub fn bernoulli_kl(a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a), "a must be a probability");
    assert!((0.0..=1.0).contains(&b), "b must be a probability");
    let term = |p: f64, q: f64| -> f64 {
        if p == 0.0 {
            0.0
        } else if q == 0.0 {
            f64::INFINITY
        } else {
            p * (p / q).ln()
        }
    };
    (term(a, b) + term(1.0 - a, 1.0 - b)).max(0.0)
}

/// The function `f(τ) = τ − 1 − ln τ` from the paper's lower bounds
/// (Theorem 7.2 and Lemma 2.1). Positive for all `τ ≠ 1`, zero at `τ = 1`.
pub fn f_tau(tau: f64) -> f64 {
    assert!(tau > 0.0, "tau must be positive");
    tau - 1.0 - tau.ln()
}

/// The Lemma 2.1 lower bound: for `δ ∈ (0, 1/4)` and `τ ∈ (1, 1/δ)`,
/// `D(B_{1−δ} ‖ B_{1−τδ}) ≥ (δ/4)(τ − 1 − ln τ)`.
///
/// Returns the pair `(lhs, rhs)` so callers (tests, Experiment E9) can
/// verify the inequality and measure its slack.
///
/// # Panics
///
/// Panics if the parameters are outside the lemma's range.
pub fn lemma_2_1(delta: f64, tau: f64) -> (f64, f64) {
    assert!(
        delta > 0.0 && delta < 0.25,
        "lemma 2.1 requires delta in (0, 1/4)"
    );
    assert!(
        tau > 1.0 && tau < 1.0 / delta,
        "lemma 2.1 requires tau in (1, 1/delta)"
    );
    let lhs = bernoulli_kl(1.0 - delta, 1.0 - tau * delta);
    let rhs = delta / 4.0 * f_tau(tau);
    (lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::paninski_far;

    #[test]
    fn uniform_entropy_is_ln_n() {
        let u = DiscreteDistribution::uniform(128);
        assert!((shannon_entropy(&u) - (128f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn point_mass_entropy_is_zero() {
        let d = DiscreteDistribution::from_pmf(vec![0.0, 1.0]).unwrap();
        assert_eq!(shannon_entropy(&d), 0.0);
    }

    #[test]
    fn collision_entropy_of_uniform_is_ln_n() {
        let u = DiscreteDistribution::uniform(256);
        assert!((collision_entropy(&u) - (256f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn collision_entropy_below_shannon() {
        // H2 <= H always, strictly unless uniform on support.
        let d = paninski_far(128, 0.5).unwrap();
        assert!(collision_entropy(&d) < shannon_entropy(&d));
    }

    #[test]
    fn kl_of_identical_is_zero() {
        let d = paninski_far(64, 0.3).unwrap();
        assert!(kl_divergence(&d, &d).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_is_nonnegative() {
        let u = DiscreteDistribution::uniform(64);
        let d = paninski_far(64, 0.5).unwrap();
        assert!(kl_divergence(&d, &u).unwrap() >= 0.0);
        assert!(kl_divergence(&u, &d).unwrap() >= 0.0);
    }

    #[test]
    fn kl_detects_absolute_continuity_failure() {
        let a = DiscreteDistribution::from_pmf(vec![0.5, 0.5]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![1.0, 0.0]).unwrap();
        assert!(kl_divergence(&a, &b).is_err());
        // The other direction is fine (0 ln 0 = 0).
        assert!(kl_divergence(&b, &a).is_ok());
    }

    #[test]
    fn bernoulli_kl_zero_at_equal() {
        assert!(bernoulli_kl(0.3, 0.3).abs() < 1e-15);
    }

    #[test]
    fn bernoulli_kl_matches_generic() {
        let a = DiscreteDistribution::from_pmf(vec![0.3, 0.7]).unwrap();
        let b = DiscreteDistribution::from_pmf(vec![0.6, 0.4]).unwrap();
        let generic = kl_divergence(&a, &b).unwrap();
        let special = bernoulli_kl(0.3, 0.6);
        assert!((generic - special).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_kl_infinite_without_absolute_continuity() {
        assert!(bernoulli_kl(0.5, 0.0).is_infinite());
        assert!(bernoulli_kl(0.5, 1.0).is_infinite());
        // but degenerate p matching degenerate q is fine
        assert_eq!(bernoulli_kl(0.0, 0.0), 0.0);
        assert_eq!(bernoulli_kl(1.0, 1.0), 0.0);
    }

    #[test]
    fn f_tau_properties() {
        assert!(f_tau(1.0).abs() < 1e-15);
        assert!(f_tau(2.0) > 0.0);
        assert!(f_tau(0.5) > 0.0);
        // f is increasing for tau > 1
        assert!(f_tau(3.0) > f_tau(2.0));
    }

    #[test]
    fn lemma_2_1_holds_on_a_grid() {
        for &delta in &[0.01, 0.05, 0.1, 0.2, 0.24] {
            for &tau in &[1.01, 1.5, 2.0, 3.0] {
                if tau < 1.0 / delta {
                    let (lhs, rhs) = lemma_2_1(delta, tau);
                    assert!(
                        lhs >= rhs,
                        "lemma 2.1 fails at delta={delta}, tau={tau}: {lhs} < {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn lemma_2_1_rejects_large_delta() {
        let _ = lemma_2_1(0.3, 1.5);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn lemma_2_1_rejects_tau_out_of_range() {
        let _ = lemma_2_1(0.1, 11.0);
    }
}
