//! Cross-crate checks driven by `dut-testkit` strategies: constructor
//! totality on hostile weight vectors (NaN, infinities, negatives,
//! denormals, overflow-prone magnitudes) and round-trip sanity on
//! well-formed pmfs.

use dut_distributions::DiscreteDistribution;
use dut_testkit::strategies::{hostile_weights, pmf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn from_weights_is_total_on_hostile_vectors(weights in hostile_weights(1, 13)) {
        // Any typed outcome is acceptable; only a panic fails the case.
        let _ = DiscreteDistribution::from_weights(weights);
    }

    #[test]
    fn from_pmf_is_total_on_hostile_vectors(masses in hostile_weights(1, 13)) {
        let _ = DiscreteDistribution::from_pmf(masses);
    }

    #[test]
    fn from_pmf_accepts_generated_pmfs(masses in pmf(1, 48)) {
        let dist = DiscreteDistribution::from_pmf(masses.clone())
            .expect("strategy emits normalized pmfs");
        prop_assert_eq!(dist.domain_size(), masses.len());
        let total: f64 = dist.pmf_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
    }
}
