//! Property-based tests for the distribution toolkit.

use dut_distributions::collision::{
    collision_probability, lemma_3_2_bound, wiener_no_collision_upper_bound,
};
use dut_distributions::distance::{l1_distance, l1_to_uniform, l2_squared_to_uniform};
use dut_distributions::families::{paninski_far, point_mass_mixture, step_far, FarFamily};
use dut_distributions::histogram::Histogram;
use dut_distributions::info::{bernoulli_kl, f_tau, lemma_2_1, shannon_entropy};
use dut_distributions::DiscreteDistribution;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_pmf(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, 2..max_n).prop_map(|w| {
        let total: f64 = w.iter().sum();
        w.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    #[test]
    fn pmf_construction_round_trips(pmf in arb_pmf(64)) {
        let d = DiscreteDistribution::from_pmf(pmf.clone()).unwrap();
        prop_assert_eq!(d.domain_size(), pmf.len());
        for (i, &p) in pmf.iter().enumerate() {
            prop_assert!((d.pmf(i) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_domain(pmf in arb_pmf(32), seed in any::<u64>()) {
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(d.sample(&mut rng) < d.domain_size());
        }
    }

    #[test]
    fn l1_triangle_inequality(a in arb_pmf(16), b in arb_pmf(16), c in arb_pmf(16)) {
        // Restrict to a common domain size.
        let n = a.len().min(b.len()).min(c.len());
        let renorm = |v: &[f64]| {
            let s: f64 = v[..n].iter().sum();
            DiscreteDistribution::from_pmf(v[..n].iter().map(|x| x / s).collect()).unwrap()
        };
        let (da, db, dc) = (renorm(&a), renorm(&b), renorm(&c));
        let ab = l1_distance(&da, &db).unwrap();
        let bc = l1_distance(&db, &dc).unwrap();
        let ac = l1_distance(&da, &dc).unwrap();
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn chi_at_least_inverse_support(pmf in arb_pmf(32)) {
        // χ(μ) ≥ 1/|support| with equality iff uniform on support.
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let chi = collision_probability(&d);
        prop_assert!(chi >= 1.0 / d.support().len() as f64 - 1e-12);
        prop_assert!(chi <= 1.0 + 1e-12);
    }

    #[test]
    fn lemma_3_2_on_families(n_half in 8usize..512, eps in 0.05f64..1.0) {
        let n = 2 * n_half;
        for fam in FarFamily::ALL {
            if let Ok(d) = fam.instantiate(n, eps) {
                let real_eps = l1_to_uniform(&d);
                // Lemma 3.2 at the *realized* distance.
                prop_assert!(
                    collision_probability(&d) >= lemma_3_2_bound(n, real_eps) - 1e-9,
                    "family {} at eps {}", fam.name(), eps
                );
            }
        }
    }

    #[test]
    fn paninski_distance_exact(n_half in 4usize..1000, eps in 0.01f64..1.0) {
        let d = paninski_far(2 * n_half, eps).unwrap();
        prop_assert!((l1_to_uniform(&d) - eps).abs() < 1e-9);
    }

    #[test]
    fn step_distance_exact(n_half in 4usize..1000, eps in 0.01f64..1.0) {
        let d = step_far(2 * n_half, eps).unwrap();
        prop_assert!((l1_to_uniform(&d) - eps).abs() < 1e-9);
    }

    #[test]
    fn point_mass_distance_exact(n in 4usize..1000, eps in 0.01f64..0.9, hot_frac in 0.0f64..1.0) {
        let hot = ((n as f64 - 1.0) * hot_frac) as usize;
        let d = point_mass_mixture(n, eps, hot).unwrap();
        prop_assert!((l1_to_uniform(&d) - eps).abs() < 1e-9);
    }

    #[test]
    fn l2_l1_cauchy_schwarz(pmf in arb_pmf(64)) {
        // ‖μ−U‖₁² ≤ n·‖μ−U‖₂².
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let n = d.domain_size() as f64;
        let l1 = l1_to_uniform(&d);
        let l2sq = l2_squared_to_uniform(&d);
        prop_assert!(l1 * l1 <= n * l2sq + 1e-9);
    }

    #[test]
    fn entropy_bounded_by_log_n(pmf in arb_pmf(64)) {
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let h = shannon_entropy(&d);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (d.domain_size() as f64).ln() + 1e-9);
    }

    #[test]
    fn bernoulli_kl_nonnegative(a in 0.0f64..1.0, b in 0.001f64..0.999) {
        prop_assert!(bernoulli_kl(a, b) >= 0.0);
    }

    #[test]
    fn lemma_2_1_random_points(delta in 0.001f64..0.249, t in 0.01f64..1.0) {
        // tau uniform in (1, min(4, 1/delta))
        let tau = 1.0 + t * ((1.0 / delta).min(4.0) - 1.0) * 0.999;
        if tau > 1.0 {
            let (lhs, rhs) = lemma_2_1(delta, tau);
            prop_assert!(lhs >= rhs - 1e-12, "delta={delta} tau={tau}");
        }
    }

    #[test]
    fn f_tau_positive_off_one(tau in 0.01f64..10.0) {
        if (tau - 1.0).abs() > 1e-6 {
            prop_assert!(f_tau(tau) > 0.0);
        }
    }

    #[test]
    fn wiener_bound_monotone_in_samples(chi_inv in 10u32..100_000, s in 2usize..200) {
        let chi = 1.0 / chi_inv as f64;
        let b1 = wiener_no_collision_upper_bound(s, chi);
        let b2 = wiener_no_collision_upper_bound(s + 1, chi);
        prop_assert!(b2 <= b1 + 1e-12, "more samples must not raise the bound");
    }

    #[test]
    fn histogram_merge_is_concatenation(
        a in proptest::collection::vec(0usize..50, 0..100),
        b in proptest::collection::vec(0usize..50, 0..100),
    ) {
        let mut ha = Histogram::from_samples(&a);
        let hb = Histogram::from_samples(&b);
        ha.merge(&hb);
        let mut concat = a.clone();
        concat.extend(&b);
        let hc = Histogram::from_samples(&concat);
        prop_assert_eq!(ha, hc);
    }

    #[test]
    fn histogram_collision_pairs_formula(samples in proptest::collection::vec(0usize..20, 0..200)) {
        let h = Histogram::from_samples(&samples);
        // Σ C(c,2) computed independently.
        let mut counts = [0u64; 20];
        for &s in &samples {
            counts[s] += 1;
        }
        let expected: u64 = counts.iter().map(|&c| c * (c.saturating_sub(1)) / 2).sum();
        prop_assert_eq!(h.collision_pairs(), expected);
    }

    #[test]
    fn mix_preserves_normalization(a in arb_pmf(32), beta in 0.0f64..1.0) {
        let d = DiscreteDistribution::from_pmf(a).unwrap();
        let u = DiscreteDistribution::uniform(d.domain_size());
        let m = d.mix(&u, beta).unwrap();
        let total: f64 = m.pmf_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_preserves_chi_and_entropy(pmf in arb_pmf(32), seed in any::<u64>()) {
        let d = DiscreteDistribution::from_pmf(pmf).unwrap();
        let n = d.domain_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            perm.swap(i, j);
        }
        let p = d.permute(&perm);
        prop_assert!((collision_probability(&d) - collision_probability(&p)).abs() < 1e-12);
        prop_assert!((shannon_entropy(&d) - shannon_entropy(&p)).abs() < 1e-9);
        prop_assert!((l1_to_uniform(&d) - l1_to_uniform(&p)).abs() < 1e-12);
    }
}
