//! Uniformity testing in the LOCAL model (§6 of the paper).
//!
//! In LOCAL there is no bandwidth limit, so in `r` rounds any node can
//! ship its sample to any node within distance `r`. The paper's
//! strategy:
//!
//! 1. Compute a maximal independent set `S` on the power graph `G^r`
//!    (Luby's algorithm; each Luby phase costs `O(r)` rounds of `G`
//!    because neighbors in `G^r` are `r` hops apart).
//! 2. Every non-MIS node picks an MIS node in its `r`-neighborhood and
//!    routes its sample there (`r` rounds).
//! 3. Each MIS node `v` has gathered all samples of `N^{r/2}(v)` — at
//!    least `r/2` of them, because a connected graph has
//!    `|N^{t}(v)| ≥ t+1` — and there are at most `⌊2k/r⌋` MIS nodes.
//! 4. The MIS nodes act as the virtual nodes of the 0-round AND-rule
//!    tester (Theorem 1.1); non-MIS nodes always accept.
//!
//! The round complexity is governed by the radius `r` needed for each
//! center to hold enough samples; as ε → 0 it degrades to gathering
//! `Θ(√n/ε²)` samples at one node, as the paper notes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dut_core::amplify::RepeatedGapTester;
use dut_core::decision::{Decision, DecisionRule, NetworkOutcome};
use dut_core::error::PlanError;
use dut_core::gap::GapTester;
use dut_core::params::{plan_and_rule, AndPlan};
use dut_distributions::collision::CollisionScratch;
use dut_distributions::SampleOracle;
use dut_netsim::algorithms::mis::{luby_mis, verify_mis};
use dut_netsim::algorithms::routing::route_to_centers;
use dut_netsim::engine::BandwidthModel;
use dut_netsim::graph::Graph;
use dut_netsim::power::{neighborhood, power_graph};
use dut_obs::{keys, NoopSink, Sink};
use rand::Rng;

/// A planned LOCAL-model uniformity tester.
///
/// # Example
///
/// ```rust
/// use dut_local::LocalUniformityTester;
/// use dut_core::decision::Decision;
/// use dut_distributions::DiscreteDistribution;
/// use dut_netsim::topology;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 1 << 16;
/// let k = 4_096;
/// let tester = LocalUniformityTester::plan(n, k, 0.75, 1.0 / 3.0)?;
///
/// let g = topology::grid(64, 64);
/// let uniform = DiscreteDistribution::uniform(n);
/// let mut rng = StdRng::seed_from_u64(1);
/// let result = tester.run(&g, &uniform, &mut rng);
/// assert_eq!(result.outcome.decision, Decision::Accept);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LocalUniformityTester {
    k: usize,
    radius: usize,
    virtual_plan: AndPlan,
    node_tester: RepeatedGapTester,
}

/// The outcome of one LOCAL tester run.
#[derive(Debug, Clone)]
pub struct LocalRunResult {
    /// The network verdict and vote counts (over the MIS virtual nodes).
    pub outcome: NetworkOutcome,
    /// Number of MIS nodes (gathering centers).
    pub mis_size: usize,
    /// Minimum samples gathered at any MIS node.
    pub min_gathered: usize,
    /// LOCAL rounds consumed: `r · (Luby phases)` for the MIS on `G^r`
    /// plus `r` rounds of sample routing.
    pub rounds: usize,
    /// The gathering radius `r`.
    pub radius: usize,
}

impl LocalUniformityTester {
    /// Plans the tester: finds the smallest radius `r` such that
    /// `⌊2k/r⌋` virtual nodes with `r/2` samples each support the
    /// AND-rule tester of Theorem 1.1.
    ///
    /// Like [`plan_and_rule`], the plan *protects completeness* (uniform
    /// is accepted w.p. ≥ 1−p) and reports honestly — via
    /// `plan_details().feasible` — whether the provable soundness
    /// reaches `p` at this scale or only the weaker
    /// "1/2 + Θ(ε²)" separation.
    ///
    /// # Errors
    ///
    /// Fails when even `r = 2k` (one center holding half the network's
    /// samples) cannot support the gap tester — the network simply has
    /// too few samples for this `n, ε`.
    pub fn plan(n: usize, k: usize, epsilon: f64, p: f64) -> Result<Self, PlanError> {
        let mut r = 2usize;
        let mut best: Option<(usize, AndPlan)> = None;
        while r <= 2 * k {
            let ell = (2 * k / r).max(1);
            let samples_available = r / 2;
            if let Ok(plan) = plan_and_rule(n, ell, epsilon, p) {
                if plan.samples_per_node <= samples_available {
                    best = Some((r, plan));
                    break; // smallest radius wins (fewest rounds)
                }
            }
            r = (r + 2).max(r * 21 / 20);
        }
        let (radius, virtual_plan) = best.ok_or(PlanError::NetworkTooSmall {
            k,
            required: ((n as f64).sqrt() / epsilon.powi(2)).ceil() as usize,
        })?;
        let inner = GapTester::with_samples(n, virtual_plan.samples_per_run)?;
        let node_tester = RepeatedGapTester::new(inner, virtual_plan.m)?;
        Ok(LocalUniformityTester {
            k,
            radius,
            virtual_plan,
            node_tester,
        })
    }

    /// Plans the tester *for a concrete graph*: instead of the
    /// worst-case `⌊2k/r⌋` bound on the number of centers, it computes
    /// the actual MIS of `G^r` (one pilot run per candidate radius) and
    /// sizes the per-center AND plan for that center count and the
    /// samples the *least-supplied* center actually gathers. On
    /// low-diameter graphs the MIS is far smaller than `2k/r`, and a
    /// worst-case plan would leave the alarm budget (δ per center)
    /// badly underused.
    ///
    /// # Errors
    ///
    /// Fails when no radius yields a feasible per-center plan.
    ///
    /// # Panics
    ///
    /// Panics if `g` is disconnected.
    #[allow(clippy::needless_range_loop)]
    pub fn plan_for_graph<R: Rng + ?Sized>(
        n: usize,
        g: &Graph,
        epsilon: f64,
        p: f64,
        rng: &mut R,
    ) -> Result<Self, PlanError> {
        assert!(g.is_connected(), "the LOCAL tester needs a connected graph");
        let k = g.node_count();
        let mut r = 2usize;
        while r <= 2 * k {
            let gr = power_graph(g, r);
            let mis = luby_mis(&gr, rng);
            let centers: Vec<usize> = (0..k).filter(|&v| mis.in_mis[v]).collect();
            let ell = centers.len().max(1);
            // Pilot assignment to find the least-supplied center.
            let mut load = vec![0usize; k];
            for v in 0..k {
                let c = if mis.in_mis[v] {
                    v
                } else {
                    neighborhood(g, v, r)
                        .into_iter()
                        .find(|&u| mis.in_mis[u])
                        .expect("MIS maximality guarantees a center within r hops")
                };
                load[c] += 1;
            }
            let min_gathered = centers.iter().map(|&c| load[c]).min().unwrap_or(0);
            if let Ok(plan) = plan_and_rule(n, ell, epsilon, p) {
                if plan.samples_per_node <= min_gathered {
                    let inner = GapTester::with_samples(n, plan.samples_per_run)?;
                    let node_tester = RepeatedGapTester::new(inner, plan.m)?;
                    return Ok(LocalUniformityTester {
                        k,
                        radius: r,
                        virtual_plan: plan,
                        node_tester,
                    });
                }
            }
            r = (r + 2).max(r * 3 / 2);
        }
        Err(PlanError::NetworkTooSmall {
            k,
            required: ((n as f64).sqrt() / epsilon.powi(2)).ceil() as usize,
        })
    }

    /// The gathering radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The AND-rule plan applied to the MIS virtual nodes.
    pub fn plan_details(&self) -> &AndPlan {
        &self.virtual_plan
    }

    /// The paper's §6 round formula with Θ-constants set to 1:
    /// `((C_p/ε²)·√(n/k^{ε²/C_p}))^{1/(1−ε²/C_p)}`.
    pub fn theory_rounds(n: usize, k: usize, epsilon: f64, p: f64) -> f64 {
        let cp = dut_core::params::c_p(p);
        let e2 = epsilon * epsilon;
        let inner = (cp / e2) * (n as f64 / (k as f64).powf(e2 / cp)).sqrt();
        inner.powf(1.0 / (1.0 - e2 / cp))
    }

    /// Runs the full LOCAL protocol on `g` with per-node samples drawn
    /// from `oracle`.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`, or the
    /// graph is disconnected.
    pub fn run<O, R>(&self, g: &Graph, oracle: &O, rng: &mut R) -> LocalRunResult
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        self.run_observed(g, oracle, rng, &mut NoopSink)
    }

    /// [`LocalUniformityTester::run`] recording `local.*` counters (and
    /// the per-center `core.gap.*` / `core.amplify.*` metrics) into
    /// `sink`. The sink never touches the RNG, so decisions are
    /// bit-identical to the unobserved run on the same seed.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s node count differs from the planned `k`, or the
    /// graph is disconnected.
    #[allow(clippy::needless_range_loop)]
    pub fn run_observed<O, R>(
        &self,
        g: &Graph,
        oracle: &O,
        rng: &mut R,
        sink: &mut dyn Sink,
    ) -> LocalRunResult
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(
            g.node_count(),
            self.k,
            "graph size does not match planned network size"
        );
        assert!(g.is_connected(), "the LOCAL tester needs a connected graph");

        // Each node draws one sample.
        let samples: Vec<usize> = (0..self.k).map(|_| oracle.draw(rng)).collect();

        // Step 1: MIS on G^r. Each Luby phase costs O(r) rounds of G
        // (a G^r-neighbor is r hops away).
        let gr = power_graph(g, self.radius);
        let mis = luby_mis(&gr, rng);
        debug_assert!(verify_mis(&gr, &mis.in_mis));
        let mis_rounds = self.radius * mis.phases;

        // Step 2: every non-MIS node picks the nearest MIS node in its
        // r-neighborhood (ties by id) ...
        let mut center_of = vec![usize::MAX; self.k];
        for v in 0..self.k {
            if mis.in_mis[v] {
                center_of[v] = v;
                continue;
            }
            // Nearest MIS node within N^r(v): scan the BFS order.
            let center = neighborhood(g, v, self.radius)
                .into_iter()
                .find(|&u| mis.in_mis[u])
                .expect("MIS maximality guarantees a center within r hops");
            center_of[v] = center;
        }
        // ... and routes its sample there over the actual graph, as a
        // message-passing protocol on the round engine (LOCAL model:
        // unbounded messages, so one parcel batch per round suffices).
        let payloads: Vec<Vec<u64>> = samples.iter().map(|&s| vec![s as u64]).collect();
        let (delivered, routing_rounds) =
            route_to_centers(g, &center_of, &payloads, BandwidthModel::Local, usize::MAX)
                .expect("routing on a connected graph terminates");
        let gathered: Vec<Vec<usize>> = delivered
            .into_iter()
            .map(|values| values.into_iter().map(|v| v as usize).collect())
            .collect();
        let rounds = mis_rounds + routing_rounds;

        // Step 3: MIS nodes vote with the planned AND-rule tester;
        // everyone else accepts. One collision scratch serves all votes.
        let mut collision = CollisionScratch::with_domain(self.virtual_plan.n);
        let mut rejecting = 0usize;
        let mut mis_size = 0usize;
        let mut min_gathered = usize::MAX;
        for v in 0..self.k {
            if !mis.in_mis[v] {
                continue;
            }
            mis_size += 1;
            min_gathered = min_gathered.min(gathered[v].len());
            if gathered[v].len() < self.node_tester.samples() {
                // An under-supplied center (possible when this run's MIS
                // differs from the planning pilot's) cannot run its
                // tester and accepts — completeness is unaffected.
                continue;
            }
            if self
                .node_tester
                .run_on_samples_observed(&gathered[v], &mut collision, sink)
                == Decision::Reject
            {
                rejecting += 1;
            }
        }

        if sink.enabled() {
            sink.add(keys::LOCAL_RUNS, 1);
            sink.add(keys::LOCAL_ROUNDS, rounds as u64);
            sink.add(keys::LOCAL_MIS_SIZE, mis_size as u64);
            sink.add(keys::LOCAL_MIN_GATHERED, min_gathered as u64);
        }

        LocalRunResult {
            outcome: NetworkOutcome {
                decision: DecisionRule::And.decide(rejecting),
                rejecting_nodes: rejecting,
                nodes: mis_size,
            },
            mis_size,
            min_gathered,
            rounds,
            radius: self.radius,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use dut_netsim::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 1 << 16;
    const K: usize = 4_096;
    const EPS: f64 = 0.75;

    #[test]
    fn plan_radius_supports_sample_need() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        assert!(t.plan_details().samples_per_node <= t.radius() / 2);
    }

    #[test]
    fn plan_fails_when_network_too_small() {
        let err = LocalUniformityTester::plan(1 << 24, 8, 0.3, 1.0 / 3.0).unwrap_err();
        assert!(matches!(err, PlanError::NetworkTooSmall { .. }));
    }

    #[test]
    fn centers_gather_at_least_r_over_2() {
        // §6: each MIS node receives all samples in its r/2-neighborhood,
        // and a connected graph has |N^t(v)| >= t+1.
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::grid(64, 64);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(1);
        let r = t.run(&g, &uniform, &mut rng);
        assert!(
            r.min_gathered >= t.radius() / 2,
            "min gathered {} below r/2 = {}",
            r.min_gathered,
            t.radius() / 2
        );
    }

    #[test]
    fn mis_size_bounded_by_2k_over_r() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::grid(64, 64);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(2);
        let r = t.run(&g, &uniform, &mut rng);
        assert!(
            r.mis_size <= 2 * K / t.radius(),
            "MIS size {} above 2k/r = {}",
            r.mis_size,
            2 * K / t.radius()
        );
    }

    #[test]
    fn accepts_uniform_on_grid() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::grid(64, 64);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 15;
        let errors = (0..trials)
            .filter(|_| t.run(&g, &uniform, &mut rng).outcome.decision == Decision::Reject)
            .count();
        // Completeness is protected by construction.
        assert!(errors <= trials / 3 + 1, "false alarms {errors}/{trials}");
    }

    #[test]
    fn separates_far_from_uniform_on_line() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::line(K);
        let uniform = DiscreteDistribution::uniform(N);
        let far = paninski_far(N, EPS).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 30;
        // The AND rule's soundness signal is weak at simulatable scale
        // (the paper's "1/2 + Θ(ε²)" regime), so aggregate per-center
        // alarms across trials rather than comparing network verdicts.
        let alarms = |d: &DiscreteDistribution, rng: &mut StdRng| -> usize {
            (0..trials)
                .map(|_| t.run(&g, d, rng).outcome.rejecting_nodes)
                .sum()
        };
        let au = alarms(&uniform, &mut rng);
        let af = alarms(&far, &mut rng);
        assert!(
            af > au,
            "no separation on line: far alarms {af} vs uniform alarms {au}"
        );
    }

    #[test]
    fn rounds_scale_with_radius() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::grid(64, 64);
        let uniform = DiscreteDistribution::uniform(N);
        let mut rng = StdRng::seed_from_u64(5);
        let r = t.run(&g, &uniform, &mut rng);
        // rounds = r * (phases + 1); Luby phases are O(log k).
        assert!(r.rounds >= t.radius());
        assert!(
            r.rounds <= t.radius() * 40,
            "rounds {} >> r * O(log k)",
            r.rounds
        );
    }

    #[test]
    fn observed_run_matches_and_records() {
        let t = LocalUniformityTester::plan(N, K, EPS, 1.0 / 3.0).unwrap();
        let g = topology::grid(64, 64);
        let uniform = DiscreteDistribution::uniform(N);

        let mut rng = StdRng::seed_from_u64(7);
        let plain = t.run(&g, &uniform, &mut rng);

        let mut rng = StdRng::seed_from_u64(7);
        let mut sink = dut_obs::MemorySink::new();
        let observed = t.run_observed(&g, &uniform, &mut rng, &mut sink);

        assert_eq!(plain.outcome.decision, observed.outcome.decision);
        assert_eq!(plain.mis_size, observed.mis_size);
        assert_eq!(plain.rounds, observed.rounds);

        assert_eq!(sink.counter(keys::LOCAL_RUNS), 1);
        assert_eq!(sink.counter(keys::LOCAL_ROUNDS), observed.rounds as u64);
        assert_eq!(sink.counter(keys::LOCAL_MIS_SIZE), observed.mis_size as u64);
        assert_eq!(
            sink.counter(keys::LOCAL_MIN_GATHERED),
            observed.min_gathered as u64
        );
        // Every sufficiently-supplied MIS center ran its amplified tester.
        assert!(sink.counter(keys::CORE_AMPLIFY_RUNS) >= 1);
        assert!(sink.counter(keys::CORE_AMPLIFY_RUNS) <= observed.mis_size as u64);
        assert!(sink.counter(keys::CORE_GAP_SAMPLES) > 0);
    }

    #[test]
    fn theory_rounds_formula_behaves() {
        // Tends to the centralized √n/ε² gathering cost as ε shrinks;
        // larger ε means fewer rounds.
        let small_eps = LocalUniformityTester::theory_rounds(1 << 16, 4096, 0.3, 1.0 / 3.0);
        let large_eps = LocalUniformityTester::theory_rounds(1 << 16, 4096, 0.9, 1.0 / 3.0);
        assert!(small_eps > large_eps);
    }
}
