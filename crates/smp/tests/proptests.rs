//! Property-based tests for the SMP Equality protocol.

use dut_smp::{EqualityProtocol, SmpProtocol};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn equal_inputs_never_rejected(
        n_words in 1usize..6,
        input in any::<u64>(),
        tau in 1.1f64..4.0,
        delta in 0.01f64..0.3,
        seeds in any::<(u64, u64, u64)>(),
    ) {
        let n = n_words * 64;
        let p = EqualityProtocol::new(n, tau, delta, seeds.0).unwrap();
        let x = vec![input; n_words];
        let mut ra = StdRng::seed_from_u64(seeds.1);
        let mut rb = StdRng::seed_from_u64(seeds.2);
        for _ in 0..20 {
            let (accept, cost) = p.run(&x, &x, &mut ra, &mut rb);
            prop_assert!(accept, "equal inputs rejected");
            prop_assert!(cost.max_bits() <= p.message_bits_bound());
        }
    }

    #[test]
    fn construction_invariants(n in 1usize..5000, tau in 1.1f64..4.0, delta in 0.001f64..0.5) {
        let p = EqualityProtocol::new(n, tau, delta, 1).unwrap();
        prop_assert!(p.codeword_bits() >= 3 * n);
        prop_assert_eq!(p.side() * p.side(), p.codeword_bits());
        prop_assert_eq!(p.side() % 6, 0);
        prop_assert!(p.chunk_len() >= 1 && p.chunk_len() <= p.side());
        prop_assert!(p.intersection_probability() <= 1.0);
    }

    #[test]
    fn referee_is_symmetric_under_disjointness(
        n in 64usize..256,
        seeds in any::<(u64, u64, u64)>(),
        input_a in any::<u64>(),
        input_b in any::<u64>(),
    ) {
        // Whatever the inputs, a run either accepts or rejects; and with
        // tiny delta the chunks rarely intersect, so most runs accept.
        let p = EqualityProtocol::new(n, 2.0, 0.001, seeds.0).unwrap();
        let words = n.div_ceil(64);
        let x = vec![input_a; words];
        let y = vec![input_b; words];
        let mut ra = StdRng::seed_from_u64(seeds.1);
        let mut rb = StdRng::seed_from_u64(seeds.2);
        let accepts = (0..50).filter(|_| p.run(&x, &y, &mut ra, &mut rb).0).count();
        prop_assert!(accepts >= 25, "tiny-delta protocol rejecting too often: {accepts}/50");
    }
}
