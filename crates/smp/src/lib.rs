//! Simultaneous message passing (SMP) with private coins, and the
//! asymmetric-error Equality protocol of the paper's Lemma 7.3.
//!
//! In the SMP model, Alice holds `X`, Bob holds `Y`, each sends **one**
//! message to a referee using only private randomness, and the referee
//! outputs a bit. The cost is the worst-case maximum message length.
//! The paper studies Equality in an unusual error regime: YES instances
//! (`X = Y`) must be accepted with probability ≥ 1−δ, while NO
//! instances need only be rejected with the tiny-but-noticeable
//! probability `τδ`. Lemma 7.3 shows `O(√(τδn))` bits suffice — tight
//! against Theorem 7.2's `Ω(√(f(τ)δn))` lower bound.
//!
//! * [`framework`] — protocol/message/cost types and a generic runner.
//! * [`equality`] — the Lemma 7.3 protocol: encode the input with a
//!   constant-distance code, view the codeword as a `(6m₀)×(6m₀)`
//!   torus, have Alice send a random vertical chunk of `t` bits and Bob
//!   a random horizontal chunk; the referee compares the (at most one)
//!   intersection cell.
//! * [`public_coin`] — the shared-randomness contrast: with public
//!   coins, Equality costs O(log 1/δ) bits; the √n-type private-coin
//!   costs are the price of keeping coins private.
//! * [`referee`] — the \[ACT18\] referee model the paper's related work
//!   contrasts against: one sample per player, ℓ bits to a referee,
//!   k = Θ(n/(2^{ℓ/2}ε²)) players.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod equality;
pub mod framework;
pub mod public_coin;
pub mod referee;

pub use equality::EqualityProtocol;
pub use framework::{SmpCost, SmpProtocol};
pub use public_coin::PublicCoinEquality;
pub use referee::RefereeUniformityProtocol;
