//! The public-coin contrast: Equality with shared randomness.
//!
//! The paper's lower bound (Theorem 7.2) is specifically about
//! *private*-coin SMP, and the √n-type costs are exactly the price of
//! not sharing randomness: with public coins, Alice and Bob simply hash
//! their inputs with a shared random function and send `O(log(1/δ))`
//! bits [Newman–Szegedy; the paper's related-work §1.1]. This module
//! implements that protocol so experiments can display the
//! private-vs-public gap side by side.

use crate::framework::SmpProtocol;
use rand::Rng;

/// Public-coin Equality: both players send `rounds` random inner
/// products of their input with shared random vectors; the referee
/// accepts iff all bits agree.
///
/// * `X = Y` → always accepted.
/// * `X ≠ Y` → each inner product differs with probability exactly 1/2
///   (random linear form on a nonzero difference), so the protocol
///   rejects with probability `1 − 2^{−rounds}`.
///
/// The shared coins are modelled by a seed that both message functions
/// use — the point being contrasted is the *communication*, which is
/// `rounds` bits instead of the private-coin `Θ(√(τδn))`.
#[derive(Debug, Clone)]
pub struct PublicCoinEquality {
    n_bits: usize,
    rounds: usize,
    shared_seed: u64,
}

impl PublicCoinEquality {
    /// Creates the protocol: `rounds` hash bits per player over
    /// `n_bits`-bit inputs, with shared randomness derived from
    /// `shared_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `rounds == 0`.
    pub fn new(n_bits: usize, rounds: usize, shared_seed: u64) -> Self {
        assert!(n_bits > 0, "need at least one input bit");
        assert!(rounds > 0, "need at least one hash bit");
        PublicCoinEquality {
            n_bits,
            rounds,
            shared_seed,
        }
    }

    /// Rejection probability on distinct inputs: `1 − 2^{−rounds}`.
    pub fn rejection_probability(&self) -> f64 {
        1.0 - 0.5f64.powi(self.rounds as i32)
    }

    /// Message size per player, in bits.
    pub fn message_bits_bound(&self) -> usize {
        self.rounds
    }

    /// The `r`-th shared random vector, generated on the fly from the
    /// shared seed (splitmix-style), bit `w` words at a time.
    fn hash_bit(&self, input: &[u64], r: usize) -> bool {
        let words = self.n_bits.div_ceil(64);
        let mut acc = 0u64;
        let mut state = self
            .shared_seed
            .wrapping_add((r as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (w, &x) in input.iter().enumerate().take(words) {
            // splitmix64 step for the shared random word
            let mut z = state.wrapping_add((w as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            state = state.rotate_left(13) ^ z;
            let mut masked = x & z;
            if w == words - 1 && !self.n_bits.is_multiple_of(64) {
                masked &= (1u64 << (self.n_bits % 64)) - 1;
            }
            acc ^= masked;
        }
        acc.count_ones() % 2 == 1
    }

    fn hash_all(&self, input: &[u64]) -> Vec<bool> {
        (0..self.rounds).map(|r| self.hash_bit(input, r)).collect()
    }
}

impl SmpProtocol for PublicCoinEquality {
    type Input = [u64];
    type Msg = Vec<bool>;

    fn alice<R: Rng + ?Sized>(&self, x: &[u64], _rng: &mut R) -> Vec<bool> {
        self.hash_all(x)
    }

    fn bob<R: Rng + ?Sized>(&self, y: &[u64], _rng: &mut R) -> Vec<bool> {
        self.hash_all(y)
    }

    fn referee(&self, alice: &Vec<bool>, bob: &Vec<bool>) -> bool {
        alice == bob
    }

    fn message_bits(&self, msg: &Vec<bool>) -> usize {
        msg.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equal_inputs_always_accepted() {
        let p = PublicCoinEquality::new(256, 10, 7);
        let mut ra = StdRng::seed_from_u64(1);
        let mut rb = StdRng::seed_from_u64(2);
        let x = [0xDEAD_BEEFu64, 0x1234, 0, u64::MAX];
        for _ in 0..100 {
            let (accept, cost) = p.run(&x, &x, &mut ra, &mut rb);
            assert!(accept);
            assert_eq!(cost.max_bits(), 10);
        }
    }

    #[test]
    fn distinct_inputs_rejected_at_half_per_bit() {
        // One hash bit: rejection rate over random pairs ≈ 1/2.
        let mut rng = StdRng::seed_from_u64(3);
        let mut rejects = 0;
        let trials = 4000;
        for i in 0..trials {
            let p = PublicCoinEquality::new(128, 1, i as u64);
            let x = [rng.gen::<u64>(), rng.gen()];
            let mut y = x;
            y[0] ^= 1;
            let mut ra = StdRng::seed_from_u64(4);
            let mut rb = StdRng::seed_from_u64(5);
            if !p.run(&x, &y, &mut ra, &mut rb).0 {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(
            (rate - 0.5).abs() < 0.05,
            "one-bit rejection rate {rate} far from 1/2"
        );
    }

    #[test]
    fn ten_bits_reject_reliably() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut rejects = 0;
        let trials = 2000;
        for i in 0..trials {
            let p = PublicCoinEquality::new(256, 10, 1000 + i as u64);
            let x: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
            let mut y = x.clone();
            y[2] ^= 1 << 17;
            let mut ra = StdRng::seed_from_u64(7);
            let mut rb = StdRng::seed_from_u64(8);
            if !p.run(&x, &y, &mut ra, &mut rb).0 {
                rejects += 1;
            }
        }
        let rate = rejects as f64 / trials as f64;
        assert!(rate > 0.98, "10 hash bits should reject ~99.9%: {rate}");
    }

    #[test]
    fn cost_is_constant_in_n() {
        let small = PublicCoinEquality::new(64, 7, 1);
        let large = PublicCoinEquality::new(1 << 20, 7, 1);
        assert_eq!(small.message_bits_bound(), large.message_bits_bound());
    }

    #[test]
    fn rejection_probability_formula() {
        let p = PublicCoinEquality::new(64, 3, 1);
        assert!((p.rejection_probability() - 0.875).abs() < 1e-12);
    }
}
