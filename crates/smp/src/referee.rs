//! The referee model of Acharya–Canonne–Tyagi \[ACT18\] — the related
//! work the paper contrasts itself against (§1.1).
//!
//! In that model each of `k` players holds **one** sample and sends a
//! short `ℓ`-bit message to a referee, who applies an *arbitrary*
//! decision function — unlike the paper's 0-round model, where each
//! player outputs a single accept/reject bit and the network rule is
//! fixed (AND or threshold). The interesting trade-off is players vs
//! bits: with `ℓ` bits per player, `k = Θ(n/(2^{ℓ/2}ε²))` players
//! suffice.
//!
//! Implementation (public-coin flavor): a shared random partition maps
//! the domain into `B = 2^ℓ` buckets; each player sends its sample's
//! bucket id; the referee counts colliding message pairs against a
//! threshold. The partition is what makes this work for *all* ε-far
//! distributions: a fixed coarsening (e.g. top bits) would erase the
//! Paninski perturbation entirely, while a random partition preserves
//! an expected `ε²/n·(1−1/B)` excess in projected collision
//! probability.

use crate::framework::SmpCost;
use dut_distributions::SampleOracle;
use rand::Rng;

/// The referee's verdict. (A local type: `dut-smp` sits below
/// `dut-core` in the dependency order, so it cannot reuse
/// `dut_core::Decision`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Looks uniform.
    Accept,
    /// Looks ε-far from uniform.
    Reject,
}

/// The referee-model uniformity tester: `k` players, one sample each,
/// `ℓ` bits of communication per player.
///
/// Each execution draws a **fresh** public random partition of the
/// domain into `B = 2^ℓ` buckets (fresh public coins per run, as
/// \[ACT18\]-style public-coin protocols assume). A fixed partition would
/// freeze a partition-specific projection of the unknown distribution,
/// whose deviation from its mean swamps the `ε²/n` signal at small `B`.
#[derive(Debug, Clone)]
pub struct RefereeUniformityProtocol {
    n: usize,
    players: usize,
    ell_bits: u32,
    /// Collision-count acceptance threshold.
    threshold: f64,
}

impl RefereeUniformityProtocol {
    /// Builds the protocol: `players` players over domain size `n`,
    /// `ell_bits` bits per message (`B = 2^ell_bits` buckets), testing
    /// at distance `epsilon`.
    ///
    /// The referee's threshold sits halfway between the expected
    /// colliding pairs under uniform, `C(k,2)·E[Σ_b w_b²]`, and the
    /// ε-far expectation, which exceeds it by
    /// `C(k,2)·ε²/n·(1−1/B)` in expectation over partitions.
    ///
    /// # Panics
    ///
    /// Panics for degenerate parameters (`n == 0`, fewer than two
    /// players, `ell_bits == 0` or ≥ 32, `epsilon ∉ (0, 1]`).
    pub fn new(n: usize, players: usize, ell_bits: u32, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(players >= 2, "need at least two players to collide");
        assert!((1..32).contains(&ell_bits), "bits per player in [1, 31]");
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon in (0, 1]");
        let buckets = (1usize << ell_bits) as f64;
        // E over partitions of the uniform projected collision prob:
        // E[Σ_b w_b²] = 1/B + (1 − 1/B)/n.
        let chi_uniform = 1.0 / buckets + (1.0 - 1.0 / buckets) / n as f64;
        let pairs = players as f64 * (players as f64 - 1.0) / 2.0;
        let excess = epsilon * epsilon / n as f64 * (1.0 - 1.0 / buckets);
        let threshold = pairs * (chi_uniform + excess / 2.0);
        RefereeUniformityProtocol {
            n,
            players,
            ell_bits,
            threshold,
        }
    }

    /// Number of players `k`.
    pub fn players(&self) -> usize {
        self.players
    }

    /// Bits each player sends.
    pub fn bits_per_player(&self) -> u32 {
        self.ell_bits
    }

    /// The \[ACT18\]-shaped sufficient player count
    /// `n/(2^{ℓ/2}·ε²)` (Θ-constant 1), for reporting.
    pub fn theory_players(n: usize, ell_bits: u32, epsilon: f64) -> f64 {
        n as f64 / (2f64.powf(ell_bits as f64 / 2.0) * epsilon * epsilon)
    }

    /// Runs the protocol once: fresh public coins draw the partition,
    /// players draw one sample each from `oracle` and send bucket ids;
    /// the referee counts colliding pairs and rejects iff the count
    /// exceeds the threshold. Returns the decision and the
    /// (uniform-length) per-player communication cost.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> (Decision, SmpCost)
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        debug_assert_eq!(oracle.domain_size(), self.n, "oracle domain mismatch");
        let buckets = 1usize << self.ell_bits;
        // Fresh public partition for this execution. Drawing lazily per
        // *sampled element* (memoized) keeps the cost at O(k) instead
        // of O(n) when k ≪ n.
        let mut partition: Vec<u32> = vec![u32::MAX; self.n];
        let mut counts = vec![0u64; buckets];
        for _ in 0..self.players {
            let x = oracle.draw(rng);
            if partition[x] == u32::MAX {
                partition[x] = rng.gen_range(0..buckets as u32);
            }
            counts[partition[x] as usize] += 1;
        }
        let colliding: u64 = counts.iter().map(|&c| c * c.saturating_sub(1) / 2).sum();
        let decision = if (colliding as f64) > self.threshold {
            Decision::Reject
        } else {
            Decision::Accept
        };
        let cost = SmpCost {
            alice_bits: self.ell_bits as usize,
            bob_bits: self.ell_bits as usize,
        };
        (decision, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn error_rate<O: SampleOracle>(
        p: &RefereeUniformityProtocol,
        oracle: &O,
        expect: Decision,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..trials)
            .filter(|_| p.run(oracle, &mut rng).0 != expect)
            .count() as f64
            / trials as f64
    }

    #[test]
    fn accessors_and_theory_shape() {
        let p = RefereeUniformityProtocol::new(1 << 12, 100, 4, 1.0);
        assert_eq!(p.players(), 100);
        assert_eq!(p.bits_per_player(), 4);
    }

    #[test]
    fn enough_players_separate() {
        let n = 1 << 10;
        let eps = 1.0;
        let ell = 6; // 64 buckets
        let k = (4.0 * RefereeUniformityProtocol::theory_players(n, ell, eps)) as usize;
        let p = RefereeUniformityProtocol::new(n, k, ell, eps);
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, eps).unwrap();
        let e_u = error_rate(&p, &uniform, Decision::Accept, 200, 3);
        let e_f = error_rate(&p, &far, Decision::Reject, 200, 4);
        assert!(e_u < 1.0 / 3.0, "false alarms {e_u}");
        assert!(e_f < 1.0 / 3.0, "missed detections {e_f}");
    }

    #[test]
    fn too_few_players_fail() {
        let n = 1 << 10;
        let eps = 1.0;
        let ell = 6;
        let k = (0.1 * RefereeUniformityProtocol::theory_players(n, ell, eps)) as usize;
        let p = RefereeUniformityProtocol::new(n, k.max(4), ell, eps);
        let far = paninski_far(n, eps).unwrap();
        let e_f = error_rate(&p, &far, Decision::Reject, 200, 6);
        assert!(e_f > 0.35, "an underpowered referee should miss: {e_f}");
    }

    #[test]
    fn more_bits_need_fewer_players() {
        // The ACT trade-off: with more bits per player (finer buckets),
        // fewer players suffice for the same error.
        let t_coarse = RefereeUniformityProtocol::theory_players(1 << 12, 2, 0.5);
        let t_fine = RefereeUniformityProtocol::theory_players(1 << 12, 10, 0.5);
        assert!(t_fine < t_coarse / 10.0);
    }

    #[test]
    fn fixed_top_bits_would_fail_where_random_partition_works() {
        // Sanity on the design note: projecting the Paninski family by
        // top bits merges each ± pair into one bucket, exactly erasing
        // the perturbation. With our random partition the projected χ
        // keeps an ε²/n-order excess — measured here via collisions.
        let n = 1 << 10;
        let eps = 1.0;
        let far = paninski_far(n, eps).unwrap();
        // Top-bit projection: bucket = x >> 4 merges pairs (2i, 2i+1).
        let mut rng = StdRng::seed_from_u64(7);
        let k = 3000;
        let mut top_counts = vec![0u64; n >> 4];
        for _ in 0..k {
            top_counts[far.sample(&mut rng) >> 4] += 1;
        }
        let top_collisions: u64 = top_counts.iter().map(|&c| c * (c - 1) / 2).sum();
        let expected_uniform = (k as f64) * (k as f64 - 1.0) / 2.0 * (16.0 / n as f64);
        // Top-bit collisions look exactly uniform (no excess).
        assert!(
            (top_collisions as f64) < expected_uniform * 1.05,
            "top-bit projection should erase the signal: {top_collisions} vs {expected_uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "two players")]
    fn rejects_single_player() {
        let _ = RefereeUniformityProtocol::new(16, 1, 2, 0.5);
    }
}
