//! SMP protocol framework: messages, costs, and a generic runner.

use dut_obs::{keys, Sink};
use rand::Rng;

/// Communication cost of one SMP execution, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmpCost {
    /// Bits in Alice's message.
    pub alice_bits: usize,
    /// Bits in Bob's message.
    pub bob_bits: usize,
}

impl SmpCost {
    /// The SMP cost measure: the maximum of the two message lengths.
    pub fn max_bits(&self) -> usize {
        self.alice_bits.max(self.bob_bits)
    }

    /// Total bits sent.
    pub fn total_bits(&self) -> usize {
        self.alice_bits + self.bob_bits
    }
}

/// A private-coin SMP protocol computing a boolean function of
/// `(X, Y)`.
///
/// The type parameters keep the framework generic: `Input` is each
/// player's input type, `Msg` whatever the players send. Private coins
/// are modelled by giving each player its own `&mut R` — the runner
/// never shares RNG state between Alice and Bob.
pub trait SmpProtocol {
    /// Each player's input.
    type Input: ?Sized;
    /// The message type sent to the referee.
    type Msg;

    /// Alice's (randomized) message computation.
    fn alice<R: Rng + ?Sized>(&self, x: &Self::Input, rng: &mut R) -> Self::Msg;

    /// Bob's (randomized) message computation.
    fn bob<R: Rng + ?Sized>(&self, y: &Self::Input, rng: &mut R) -> Self::Msg;

    /// The referee's output given both messages.
    fn referee(&self, alice: &Self::Msg, bob: &Self::Msg) -> bool;

    /// The size in bits of a message on the wire.
    fn message_bits(&self, msg: &Self::Msg) -> usize;

    /// Runs one execution with independent private coins, returning the
    /// referee's output and the realized cost.
    fn run<R: Rng + ?Sized>(
        &self,
        x: &Self::Input,
        y: &Self::Input,
        alice_rng: &mut R,
        bob_rng: &mut R,
    ) -> (bool, SmpCost) {
        let ma = self.alice(x, alice_rng);
        let mb = self.bob(y, bob_rng);
        let cost = SmpCost {
            alice_bits: self.message_bits(&ma),
            bob_bits: self.message_bits(&mb),
        };
        (self.referee(&ma, &mb), cost)
    }

    /// [`SmpProtocol::run`] recording `smp.*` counters into `sink`:
    /// one `smp.runs` tick, the referee's total input bits
    /// (`smp.message_bits`, both players summed), and `smp.accepts`
    /// when the referee outputs `true`. The sink never touches either
    /// player's RNG, so the execution is bit-identical to [`run`].
    ///
    /// [`run`]: SmpProtocol::run
    fn run_observed<R: Rng + ?Sized>(
        &self,
        x: &Self::Input,
        y: &Self::Input,
        alice_rng: &mut R,
        bob_rng: &mut R,
        sink: &mut dyn Sink,
    ) -> (bool, SmpCost) {
        let (out, cost) = self.run(x, y, alice_rng, bob_rng);
        if sink.enabled() {
            sink.add(keys::SMP_RUNS, 1);
            sink.add(keys::SMP_MESSAGE_BITS, cost.total_bits() as u64);
            sink.add(keys::SMP_ACCEPTS, u64::from(out));
        }
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivial deterministic protocol: send the first bit.
    #[derive(Debug)]
    struct FirstBit;

    impl SmpProtocol for FirstBit {
        type Input = [u64];
        type Msg = bool;

        fn alice<R: Rng + ?Sized>(&self, x: &[u64], _rng: &mut R) -> bool {
            x[0] & 1 == 1
        }
        fn bob<R: Rng + ?Sized>(&self, y: &[u64], _rng: &mut R) -> bool {
            y[0] & 1 == 1
        }
        fn referee(&self, a: &bool, b: &bool) -> bool {
            a == b
        }
        fn message_bits(&self, _msg: &bool) -> usize {
            1
        }
    }

    #[test]
    fn runner_wires_messages_and_cost() {
        let p = FirstBit;
        let mut ra = StdRng::seed_from_u64(1);
        let mut rb = StdRng::seed_from_u64(2);
        let (out, cost) = p.run(&[1u64], &[1u64], &mut ra, &mut rb);
        assert!(out);
        assert_eq!(cost.max_bits(), 1);
        assert_eq!(cost.total_bits(), 2);
        let (out, _) = p.run(&[1u64], &[0u64], &mut ra, &mut rb);
        assert!(!out);
    }

    #[test]
    fn observed_run_matches_and_records() {
        let p = FirstBit;
        let mut sink = dut_obs::MemorySink::new();

        let mut ra = StdRng::seed_from_u64(1);
        let mut rb = StdRng::seed_from_u64(2);
        let (out, cost) = p.run_observed(&[1u64], &[1u64], &mut ra, &mut rb, &mut sink);
        assert!(out);
        let (out, _) = p.run_observed(&[1u64], &[0u64], &mut ra, &mut rb, &mut sink);
        assert!(!out);

        assert_eq!(sink.counter(keys::SMP_RUNS), 2);
        assert_eq!(
            sink.counter(keys::SMP_MESSAGE_BITS),
            2 * cost.total_bits() as u64
        );
        assert_eq!(sink.counter(keys::SMP_ACCEPTS), 1);
    }

    #[test]
    fn cost_accessors() {
        let c = SmpCost {
            alice_bits: 10,
            bob_bits: 20,
        };
        assert_eq!(c.max_bits(), 20);
        assert_eq!(c.total_bits(), 30);
    }
}
