//! The asymmetric-error Equality protocol (Lemma 7.3).
//!
//! Parameters: input length `n` bits, gap factor `τ > 1`, error budget
//! `δ`. The protocol:
//!
//! 1. Both players encode their input with a shared rate-≈1/3 code
//!    `C : {0,1}^n → {0,1}^m` with relative distance ≥ 1/6, where
//!    `m = (6m₀)²` is a square (the paper picks `3n ≤ m ≤ 4n`; we take
//!    the smallest square of a multiple of 6 that is ≥ 3n).
//! 2. The codeword is viewed as a `(6m₀) × (6m₀)` table, wrapped as a
//!    torus.
//! 3. Alice picks a uniformly random cell `(a₁, a₂)` and sends the
//!    vertical chunk of `t` bits starting there (down column `a₂`);
//!    Bob sends a horizontal chunk of `t` bits along row `b₁`.
//! 4. The chunks overlap in at most one cell — `(b₁, a₂)`, when
//!    `b₁` lies in Alice's row range and `a₂` in Bob's column range —
//!    and the referee accepts unless that shared cell differs.
//!
//! Analysis: chunks intersect with probability `(t/6m₀)² = t²/m`, and
//! the intersection cell is uniform; distinct inputs give codewords
//! differing in ≥ m/6 cells, so
//! `Pr[reject] ≥ (t²/m)(1/6) ≥ τδ` for `t = ⌈√(6τδm)⌉`.
//! Equal inputs are never rejected. Cost: `t + 2⌈log₂ 6m₀⌉` bits.

use crate::framework::SmpProtocol;
use dut_ecc::{BinaryCode, RandomLinearCode};
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Error constructing an [`EqualityProtocol`].
#[derive(Debug, Clone, PartialEq)]
pub enum EqualityError {
    /// A parameter was out of range.
    InvalidParameter {
        /// Offending parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Valid range description.
        expected: &'static str,
    },
}

impl fmt::Display for EqualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqualityError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "parameter {name} = {value} out of range ({expected})"),
        }
    }
}

impl Error for EqualityError {}

/// One player's message: a start cell plus a chunk of codeword bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMessage {
    /// Start row of the chunk.
    pub row: usize,
    /// Start column of the chunk.
    pub col: usize,
    /// The chunk bits (length `t`). Alice's run vertically from
    /// `(row, col)`; Bob's run horizontally.
    pub bits: Vec<bool>,
}

/// The Lemma 7.3 Equality protocol.
///
/// # Example
///
/// ```rust
/// use dut_smp::{EqualityProtocol, SmpProtocol};
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = EqualityProtocol::new(256, 2.0, 0.05, 42)?;
/// let mut ra = StdRng::seed_from_u64(1);
/// let mut rb = StdRng::seed_from_u64(2);
///
/// let x = [0xDEAD_BEEFu64; 4];
/// // Equal inputs are never rejected.
/// let (accept, cost) = p.run(&x, &x, &mut ra, &mut rb);
/// assert!(accept);
/// assert!(cost.max_bits() <= p.message_bits_bound());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EqualityProtocol {
    n_bits: usize,
    /// Torus side length `6m₀`.
    side: usize,
    /// Codeword length `m = side²`.
    m: usize,
    /// Chunk length `t`.
    t: usize,
    tau: f64,
    delta: f64,
    code: RandomLinearCode,
}

impl EqualityProtocol {
    /// Creates the protocol for `n_bits`-bit inputs with gap `tau` and
    /// error budget `delta`. `seed` determines the shared code (a
    /// public parameter, not a shared coin).
    ///
    /// # Errors
    ///
    /// Returns [`EqualityError::InvalidParameter`] for `n_bits == 0`,
    /// `tau <= 1`, or `delta` outside `(0, 1)`.
    pub fn new(n_bits: usize, tau: f64, delta: f64, seed: u64) -> Result<Self, EqualityError> {
        if n_bits == 0 {
            return Err(EqualityError::InvalidParameter {
                name: "n_bits",
                value: 0.0,
                expected: "n_bits >= 1",
            });
        }
        if !(tau > 1.0 && tau.is_finite()) {
            return Err(EqualityError::InvalidParameter {
                name: "tau",
                value: tau,
                expected: "tau > 1",
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(EqualityError::InvalidParameter {
                name: "delta",
                value: delta,
                expected: "0 < delta < 1",
            });
        }
        // Smallest m = (6 m0)^2 >= 3 n_bits.
        let m0 = ((3.0 * n_bits as f64).sqrt() / 6.0).ceil().max(1.0) as usize;
        let side = 6 * m0;
        let m = side * side;
        // Chunk length: t = ceil(sqrt(6 tau delta m)), clamped to the
        // torus side (a full column is the most a chunk can hold).
        let t = ((6.0 * tau * delta * m as f64).sqrt().ceil() as usize)
            .max(1)
            .min(side);
        let code = RandomLinearCode::new(n_bits, m, seed);
        Ok(EqualityProtocol {
            n_bits,
            side,
            m,
            t,
            tau,
            delta,
            code,
        })
    }

    /// Input length in bits.
    pub fn input_bits(&self) -> usize {
        self.n_bits
    }

    /// Codeword length `m` (a square).
    pub fn codeword_bits(&self) -> usize {
        self.m
    }

    /// The torus side `6m₀`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The chunk length `t`.
    pub fn chunk_len(&self) -> usize {
        self.t
    }

    /// Worst-case message size: `t` chunk bits plus two coordinates.
    pub fn message_bits_bound(&self) -> usize {
        let coord_bits = (self.side as f64).log2().ceil() as usize;
        self.t + 2 * coord_bits
    }

    /// The probability the chunks intersect: `t²/m`.
    pub fn intersection_probability(&self) -> f64 {
        (self.t as f64 / self.side as f64).powi(2)
    }

    /// Lower bound on the rejection probability for distinct inputs:
    /// `(t²/m)·(1/6) ≥ τδ` (assuming the code's 1/6 relative distance).
    pub fn rejection_lower_bound(&self) -> f64 {
        (self.intersection_probability() / 6.0).min(1.0)
    }

    /// The gap/error parameters `(τ, δ)` the protocol was built for.
    pub fn parameters(&self) -> (f64, f64) {
        (self.tau, self.delta)
    }

    /// Bit `(row, col)` of the encoded input (torus coordinates).
    fn table_bit(&self, codeword: &[u64], row: usize, col: usize) -> bool {
        let idx = (row % self.side) * self.side + (col % self.side);
        (codeword[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Precomputes a player's codeword table. Encoding is the expensive
    /// step (a k×m matrix product); a player with a fixed input encodes
    /// once and then answers any number of chunk requests in O(t).
    pub fn encode_input(&self, input: &[u64]) -> EncodedInput {
        EncodedInput {
            codeword: self.code.encode(input),
        }
    }

    /// Alice's message from a precomputed codeword: a random vertical
    /// chunk.
    pub fn alice_from_encoded<R: Rng + ?Sized>(
        &self,
        encoded: &EncodedInput,
        rng: &mut R,
    ) -> ChunkMessage {
        self.chunk_from_codeword(&encoded.codeword, true, rng)
    }

    /// Bob's message from a precomputed codeword: a random horizontal
    /// chunk.
    pub fn bob_from_encoded<R: Rng + ?Sized>(
        &self,
        encoded: &EncodedInput,
        rng: &mut R,
    ) -> ChunkMessage {
        self.chunk_from_codeword(&encoded.codeword, false, rng)
    }

    fn chunk_from_codeword<R: Rng + ?Sized>(
        &self,
        codeword: &[u64],
        vertical: bool,
        rng: &mut R,
    ) -> ChunkMessage {
        let row = rng.gen_range(0..self.side);
        let col = rng.gen_range(0..self.side);
        let bits = (0..self.t)
            .map(|i| {
                if vertical {
                    self.table_bit(codeword, row + i, col)
                } else {
                    self.table_bit(codeword, row, col + i)
                }
            })
            .collect();
        ChunkMessage { row, col, bits }
    }

    fn chunk<R: Rng + ?Sized>(&self, input: &[u64], vertical: bool, rng: &mut R) -> ChunkMessage {
        let codeword = self.code.encode(input);
        self.chunk_from_codeword(&codeword, vertical, rng)
    }
}

/// A player's precomputed codeword table (see
/// [`EqualityProtocol::encode_input`]).
#[derive(Debug, Clone)]
pub struct EncodedInput {
    codeword: Vec<u64>,
}

impl SmpProtocol for EqualityProtocol {
    type Input = [u64];
    type Msg = ChunkMessage;

    /// Alice: vertical chunk down column `col` starting at `row`.
    fn alice<R: Rng + ?Sized>(&self, x: &[u64], rng: &mut R) -> ChunkMessage {
        self.chunk(x, true, rng)
    }

    /// Bob: horizontal chunk along row `row` starting at `col`.
    fn bob<R: Rng + ?Sized>(&self, y: &[u64], rng: &mut R) -> ChunkMessage {
        self.chunk(y, false, rng)
    }

    /// Accepts unless the chunks share a cell and disagree on it.
    fn referee(&self, alice: &ChunkMessage, bob: &ChunkMessage) -> bool {
        // Shared cell is (bob.row, alice.col), present iff bob.row lies
        // in Alice's row range and alice.col lies in Bob's column range
        // (with torus wrap-around).
        let row_off = (bob.row + self.side - alice.row) % self.side;
        let col_off = (alice.col + self.side - bob.col) % self.side;
        if row_off < self.t && col_off < self.t {
            alice.bits[row_off] == bob.bits[col_off]
        } else {
            true
        }
    }

    fn message_bits(&self, msg: &ChunkMessage) -> usize {
        let coord_bits = (self.side as f64).log2().ceil() as usize;
        msg.bits.len() + 2 * coord_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_input<R: Rng>(bits: usize, rng: &mut R) -> Vec<u64> {
        let words = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        if !bits.is_multiple_of(64) {
            v[words - 1] &= (1u64 << (bits % 64)) - 1;
        }
        v
    }

    #[test]
    fn construction_shapes() {
        let p = EqualityProtocol::new(256, 2.0, 0.05, 1).unwrap();
        assert!(p.codeword_bits() >= 3 * 256);
        assert_eq!(p.side() % 6, 0);
        assert_eq!(p.side() * p.side(), p.codeword_bits());
        assert!(p.chunk_len() <= p.side());
        assert!(p.rejection_lower_bound() >= 2.0 * 0.05 * 0.99);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(EqualityProtocol::new(0, 2.0, 0.1, 1).is_err());
        assert!(EqualityProtocol::new(64, 1.0, 0.1, 1).is_err());
        assert!(EqualityProtocol::new(64, 2.0, 0.0, 1).is_err());
        assert!(EqualityProtocol::new(64, 2.0, 1.0, 1).is_err());
    }

    #[test]
    fn equal_inputs_always_accepted() {
        let p = EqualityProtocol::new(128, 2.0, 0.1, 2).unwrap();
        let mut ra = StdRng::seed_from_u64(10);
        let mut rb = StdRng::seed_from_u64(20);
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..2000 {
            let x = random_input(128, &mut rng);
            let (accept, _) = p.run(&x, &x, &mut ra, &mut rb);
            assert!(accept, "equal inputs rejected");
        }
    }

    #[test]
    fn distinct_inputs_rejected_at_rate_tau_delta() {
        let tau = 2.0;
        let delta = 0.05;
        let p = EqualityProtocol::new(256, tau, delta, 3).unwrap();
        let mut ra = StdRng::seed_from_u64(11);
        let mut rb = StdRng::seed_from_u64(21);
        let mut rng = StdRng::seed_from_u64(31);
        let x = random_input(256, &mut rng);
        let mut y = x.clone();
        y[0] ^= 1; // minimally distinct inputs: worst case for detection
        let trials = 40_000;
        let rejects = (0..trials)
            .filter(|_| !p.run(&x, &y, &mut ra, &mut rb).0)
            .count();
        let rate = rejects as f64 / trials as f64;
        let bound = tau * delta;
        // 3-sigma Monte-Carlo slack below the bound.
        let sigma = (bound / trials as f64).sqrt() * 3.0;
        assert!(
            rate >= bound - sigma,
            "rejection rate {rate} below tau*delta = {bound}"
        );
    }

    #[test]
    fn cost_scales_like_sqrt_tau_delta_n() {
        let p1 = EqualityProtocol::new(1 << 10, 2.0, 0.05, 4).unwrap();
        let p2 = EqualityProtocol::new(1 << 14, 2.0, 0.05, 4).unwrap();
        // 16x input should cost ~4x chunk bits.
        let ratio = p2.chunk_len() as f64 / p1.chunk_len() as f64;
        assert!((3.0..5.0).contains(&ratio), "chunk growth {ratio} not ~4x");
        // And stays well below the trivial n-bit protocol.
        assert!(p2.message_bits_bound() < (1 << 14) / 4);
    }

    #[test]
    fn cost_scales_with_delta() {
        let small = EqualityProtocol::new(1 << 12, 2.0, 0.005, 5).unwrap();
        let large = EqualityProtocol::new(1 << 12, 2.0, 0.08, 5).unwrap();
        // 16x delta → 4x chunk length (both below the side-length clamp).
        let ratio = large.chunk_len() as f64 / small.chunk_len() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reported_cost_matches_bound() {
        let p = EqualityProtocol::new(512, 3.0, 0.02, 6).unwrap();
        let mut ra = StdRng::seed_from_u64(12);
        let mut rb = StdRng::seed_from_u64(22);
        let mut rng = StdRng::seed_from_u64(32);
        let x = random_input(512, &mut rng);
        let y = random_input(512, &mut rng);
        let (_, cost) = p.run(&x, &y, &mut ra, &mut rb);
        assert_eq!(cost.alice_bits, p.message_bits_bound());
        assert_eq!(cost.bob_bits, p.message_bits_bound());
    }

    #[test]
    fn referee_detects_planted_intersection_mismatch() {
        let p = EqualityProtocol::new(64, 2.0, 0.01, 7).unwrap();
        let t = p.chunk_len();
        // Alice's vertical chunk at (0, 0); Bob's horizontal at (0, 0):
        // shared cell (0,0) = alice.bits[0] vs bob.bits[0].
        let alice = ChunkMessage {
            row: 0,
            col: 0,
            bits: vec![true; t],
        };
        let bob = ChunkMessage {
            row: 0,
            col: 0,
            bits: vec![false; t],
        };
        assert!(!p.referee(&alice, &bob));
        // Disjoint chunks: Bob's row far below Alice's range.
        let bob_far = ChunkMessage {
            row: t, // alice covers rows [0, t)
            col: 0,
            bits: vec![false; t],
        };
        assert!(p.referee(&alice, &bob_far));
    }

    #[test]
    fn wraparound_intersection_detected() {
        let p = EqualityProtocol::new(64, 2.0, 0.01, 8).unwrap();
        let side = p.side();
        let t = p.chunk_len();
        if t < 2 {
            return; // no wrap-around possible with single-bit chunks
        }
        // Alice starts at the last row; her chunk wraps to row 0.
        let alice = ChunkMessage {
            row: side - 1,
            col: 0,
            bits: vec![true; t],
        };
        // Bob's row 0 is alice.bits[1] (offset (0 - (side-1)) mod side = 1).
        let bob = ChunkMessage {
            row: 0,
            col: 0,
            bits: vec![false; t],
        };
        assert!(!p.referee(&alice, &bob));
    }
}
