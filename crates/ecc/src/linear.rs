//! Seeded random linear codes.
//!
//! A random linear code with generator matrix `G ∈ GF(2)^{k×n}` meets
//! the Gilbert–Varshamov bound with high probability: at rate 1/3 its
//! relative distance is ≈ `H⁻¹(2/3) ≈ 0.174 > 1/6` — exactly the
//! parameters the Equality protocol of Lemma 7.3 requires. Encoding is
//! a `k`-fold XOR of bit-packed rows. The generator is derived
//! deterministically from a seed, so Alice and Bob (who share the code
//! but not randomness) construct identical matrices.

use crate::BinaryCode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random linear `[n, k]` binary code with a seed-derived generator.
#[derive(Debug, Clone)]
pub struct RandomLinearCode {
    k: usize,
    n: usize,
    /// Row-major generator: row `i` is the codeword of message bit `i`,
    /// packed in `⌈n/64⌉` words.
    rows: Vec<Vec<u64>>,
}

impl RandomLinearCode {
    /// Builds the `[output_bits, input_bits]` code from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `input_bits == 0` or `output_bits < input_bits`.
    pub fn new(input_bits: usize, output_bits: usize, seed: u64) -> Self {
        assert!(input_bits > 0, "need at least one message bit");
        assert!(
            output_bits >= input_bits,
            "a code cannot compress ({input_bits} -> {output_bits})"
        );
        let words = output_bits.div_ceil(64);
        let mask_last = if output_bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (output_bits % 64)) - 1
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..input_bits)
            .map(|_| {
                let mut row: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
                row[words - 1] &= mask_last;
                row
            })
            .collect();
        RandomLinearCode {
            k: input_bits,
            n: output_bits,
            rows,
        }
    }

    /// Builds a rate-1/3 code for `input_bits` message bits (the
    /// Lemma 7.3 shape `{0,1}^{m/3} → {0,1}^m`).
    pub fn rate_one_third(input_bits: usize, seed: u64) -> Self {
        RandomLinearCode::new(input_bits, 3 * input_bits, seed)
    }
}

impl BinaryCode for RandomLinearCode {
    fn input_bits(&self) -> usize {
        self.k
    }

    fn output_bits(&self) -> usize {
        self.n
    }

    fn encode(&self, message: &[u64]) -> Vec<u64> {
        let words = self.n.div_ceil(64);
        assert!(
            message.len() >= self.k.div_ceil(64),
            "message too short for {} bits",
            self.k
        );
        let mut out = vec![0u64; words];
        for (i, row) in self.rows.iter().enumerate() {
            if (message[i / 64] >> (i % 64)) & 1 == 1 {
                for (o, &r) in out.iter_mut().zip(row) {
                    *o ^= r;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{exact_min_distance_linear, hamming_distance, sampled_min_distance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_seed_same_code() {
        let a = RandomLinearCode::new(16, 48, 7);
        let b = RandomLinearCode::new(16, 48, 7);
        assert_eq!(a.encode(&[0xABCD]), b.encode(&[0xABCD]));
    }

    #[test]
    fn different_seed_different_code() {
        let a = RandomLinearCode::new(16, 48, 7);
        let b = RandomLinearCode::new(16, 48, 8);
        assert_ne!(a.encode(&[0xABCD]), b.encode(&[0xABCD]));
    }

    #[test]
    fn zero_encodes_to_zero() {
        let c = RandomLinearCode::new(16, 48, 1);
        assert!(c.encode(&[0]).iter().all(|&w| w == 0));
    }

    #[test]
    fn encoding_is_linear() {
        let c = RandomLinearCode::new(16, 48, 2);
        let a = 0x1234u64;
        let b = 0x8421u64;
        let ca = c.encode(&[a]);
        let cb = c.encode(&[b]);
        let cab = c.encode(&[a ^ b]);
        for i in 0..ca.len() {
            assert_eq!(cab[i], ca[i] ^ cb[i]);
        }
    }

    #[test]
    fn rate_one_third_shape() {
        let c = RandomLinearCode::rate_one_third(100, 3);
        assert_eq!(c.input_bits(), 100);
        assert_eq!(c.output_bits(), 300);
        assert!((c.rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rate_one_third_achieves_one_sixth_distance_small() {
        // Exact check at k=12, n=36: GV says relative distance ≈ 0.174;
        // require the protocol's 1/6 = 6 bits.
        let mut ok = 0;
        for seed in 0..5u64 {
            let c = RandomLinearCode::rate_one_third(12, seed);
            let d = exact_min_distance_linear(&c);
            if d * 6 >= c.output_bits() {
                ok += 1;
            }
        }
        assert!(ok >= 4, "only {ok}/5 seeds met the 1/6 distance bound");
    }

    #[test]
    fn large_code_sampled_distance_concentrates() {
        // At n=1536 random codeword pairs differ in ~n/2 positions;
        // sampled minima stay far above n/6.
        let c = RandomLinearCode::rate_one_third(512, 11);
        let mut rng = StdRng::seed_from_u64(99);
        let d = sampled_min_distance(&c, 300, &mut rng);
        assert!(
            d * 6 >= c.output_bits(),
            "sampled distance {d} below n/6 = {}",
            c.output_bits() / 6
        );
    }

    #[test]
    fn multiword_messages_encode() {
        let c = RandomLinearCode::new(128, 384, 5);
        let m1 = [u64::MAX, 0u64];
        let m2 = [0u64, u64::MAX];
        let c1 = c.encode(&m1);
        let c2 = c.encode(&m2);
        assert_ne!(c1, c2);
        assert!(hamming_distance(&c1, &c2, 384) > 0);
    }

    #[test]
    #[should_panic(expected = "cannot compress")]
    fn compression_rejected() {
        let _ = RandomLinearCode::new(10, 5, 0);
    }
}
