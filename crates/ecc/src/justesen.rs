//! The Justesen-style concatenated code.
//!
//! Outer code: Reed–Solomon `[N, K]` over `GF(2^m)` with `N = 2^m − 1`.
//! Inner codes: the *Wozencraft ensemble* — position `i` of the RS
//! codeword is encoded by the rate-1/2 map `x ↦ (x, αⁱ·x)`, a different
//! linear map for every position. Justesen's insight is that most
//! members of the ensemble meet the GV bound, so the concatenation has
//! constant relative distance with no search or decoding machinery.
//!
//! Guarantees implemented here:
//!
//! * every pair of distinct messages differs in ≥ `N−K+1` outer symbols
//!   (MDS), and each differing symbol contributes ≥ 1 output bit, so the
//!   *certified* minimum distance is `N−K+1` bits;
//! * the ensemble argument (and our empirical measurements — see the
//!   tests and Experiment E8) put the actual relative distance far
//!   higher; the crate-level docs discuss why the rate-1/3 protocol
//!   defaults to [`crate::linear::RandomLinearCode`] instead.

use crate::gf::GaloisField;
use crate::rs_decode::{berlekamp_welch, DecodeError};
use crate::BinaryCode;

/// A Justesen-style concatenated code.
#[derive(Debug, Clone)]
pub struct JustesenCode {
    field: GaloisField,
    /// Outer length `N = 2^m − 1`.
    n_outer: usize,
    /// Outer dimension `K`.
    k_outer: usize,
}

impl JustesenCode {
    /// Creates the code with outer RS `[2^m − 1, k_outer]` over
    /// `GF(2^m)`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ m ≤ 16` and `1 ≤ k_outer ≤ 2^m − 1`.
    pub fn new(m: u32, k_outer: usize) -> Self {
        let field = GaloisField::new(m);
        let n_outer = field.size() - 1;
        assert!(
            (1..=n_outer).contains(&k_outer),
            "outer dimension must be in [1, {n_outer}]"
        );
        JustesenCode {
            field,
            n_outer,
            k_outer,
        }
    }

    /// Creates the rate-1/3 instance: `K = ⌊2N/3⌋` so
    /// `K·m / (2·N·m) ≈ 1/3`.
    pub fn rate_one_third(m: u32) -> Self {
        let n = (1usize << m) - 1;
        JustesenCode::new(m, (2 * n / 3).max(1))
    }

    /// Outer code length `N` (symbols).
    pub fn outer_length(&self) -> usize {
        self.n_outer
    }

    /// Outer code dimension `K` (symbols).
    pub fn outer_dimension(&self) -> usize {
        self.k_outer
    }

    /// The certified minimum distance in bits: `N − K + 1` (each
    /// differing outer symbol contributes at least one bit).
    pub fn certified_min_distance(&self) -> usize {
        self.n_outer - self.k_outer + 1
    }

    /// Symbol size `m` in bits.
    pub fn symbol_bits(&self) -> usize {
        self.field.degree() as usize
    }

    /// RS evaluation (Horner) of the message polynomial at `x`.
    fn eval(&self, message: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in message.iter().rev() {
            acc = self.field.add(self.field.mul(acc, x), c);
        }
        acc
    }

    /// The certified correction radius in wire *bits*: `⌊(N−K)/2⌋`.
    ///
    /// Any pattern of at most this many bit flips is corrected by
    /// [`JustesenCode::decode`]: each flip lands in exactly one inner
    /// block, so `t` flips corrupt at most `t` inner blocks; each
    /// corrupted block yields at most one wrong outer symbol after
    /// nearest-codeword inner decoding; and the outer Berlekamp–Welch
    /// decoder corrects up to `⌊(N−K)/2⌋` outer symbol errors.
    pub fn certified_correction_radius(&self) -> usize {
        (self.n_outer - self.k_outer) / 2
    }

    /// Decodes a received word of [`BinaryCode::output_bits`] bits,
    /// correcting any pattern of at most
    /// [`JustesenCode::certified_correction_radius`] bit flips, and
    /// returns the message repacked into `⌈input_bits/64⌉` words.
    ///
    /// Inner decoding is brute force over the `2^m` Wozencraft
    /// codewords `(x, αⁱ·x)` per position (nearest by Hamming cost;
    /// ties break to the smallest `x`, keeping the decoder
    /// deterministic); outer decoding is `berlekamp_welch` at the
    /// evaluation points `α⁰ … α^{N−1}`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::WrongLength`] if `received` carries fewer
    /// than `output_bits` bits, and [`DecodeError::BeyondCapacity`]
    /// when the inner-decoded symbols are not within the outer code's
    /// error capacity of any codeword.
    pub fn decode(&self, received: &[u64]) -> Result<Vec<u64>, DecodeError> {
        let m = self.symbol_bits();
        if received.len() * 64 < self.output_bits() {
            return Err(DecodeError::WrongLength {
                expected: self.output_bits(),
                actual: received.len() * 64,
            });
        }
        let capacity = self.certified_correction_radius();
        // Inner decode: nearest Wozencraft codeword at each position.
        let mut symbols = Vec::with_capacity(self.n_outer);
        for i in 0..self.n_outer {
            let y1 = get_bits(received, 2 * i * m, m);
            let y2 = get_bits(received, (2 * i + 1) * m, m);
            let mult = self.field.alpha_pow(i);
            let mut best = 0u16;
            let mut best_cost = usize::MAX;
            for x in 0..self.field.size() {
                let x = x as u16;
                let cost = (x ^ y1).count_ones() as usize
                    + (self.field.mul(mult, x) ^ y2).count_ones() as usize;
                if cost < best_cost {
                    best = x;
                    best_cost = cost;
                }
            }
            symbols.push(best);
        }
        // Outer decode at the same points the encoder evaluated.
        let points: Vec<u16> = (0..self.n_outer).map(|i| self.field.alpha_pow(i)).collect();
        let message = berlekamp_welch(&self.field, &points, &symbols, self.k_outer)
            .ok_or(DecodeError::BeyondCapacity { capacity })?;
        let mut out = vec![0u64; self.input_bits().div_ceil(64)];
        for (i, &s) in message.iter().enumerate() {
            set_bits(&mut out, i * m, m, s);
        }
        Ok(out)
    }
}

fn get_bits(words: &[u64], start: usize, count: usize) -> u16 {
    let mut v = 0u16;
    for b in 0..count {
        let idx = start + b;
        if (words[idx / 64] >> (idx % 64)) & 1 == 1 {
            v |= 1 << b;
        }
    }
    v
}

fn set_bits(words: &mut [u64], start: usize, count: usize, value: u16) {
    for b in 0..count {
        if (value >> b) & 1 == 1 {
            let idx = start + b;
            words[idx / 64] |= 1 << (idx % 64);
        }
    }
}

impl BinaryCode for JustesenCode {
    fn input_bits(&self) -> usize {
        self.k_outer * self.symbol_bits()
    }

    fn output_bits(&self) -> usize {
        2 * self.n_outer * self.symbol_bits()
    }

    fn encode(&self, message: &[u64]) -> Vec<u64> {
        let m = self.symbol_bits();
        assert!(
            message.len() * 64 >= self.input_bits(),
            "message too short for {} bits",
            self.input_bits()
        );
        // Unpack K symbols.
        let symbols: Vec<u16> = (0..self.k_outer)
            .map(|i| get_bits(message, i * m, m))
            .collect();
        // Outer RS encoding at points α^0 .. α^{N-1}, inner Wozencraft
        // map x ↦ (x, α^i·x) at position i.
        let mut out = vec![0u64; self.output_bits().div_ceil(64)];
        for i in 0..self.n_outer {
            let point = self.field.alpha_pow(i);
            let c = self.eval(&symbols, point);
            let inner_mult = self.field.alpha_pow(i);
            let paired = self.field.mul(inner_mult, c);
            set_bits(&mut out, 2 * i * m, m, c);
            set_bits(&mut out, (2 * i + 1) * m, m, paired);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{hamming_distance, sampled_min_distance};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shapes() {
        let c = JustesenCode::new(8, 170);
        assert_eq!(c.outer_length(), 255);
        assert_eq!(c.input_bits(), 170 * 8);
        assert_eq!(c.output_bits(), 2 * 255 * 8);
        assert_eq!(c.certified_min_distance(), 86);
    }

    #[test]
    fn rate_one_third_is_close() {
        let c = JustesenCode::rate_one_third(8);
        assert!((c.rate() - 1.0 / 3.0).abs() < 0.01, "rate {}", c.rate());
    }

    #[test]
    fn zero_encodes_to_zero() {
        let c = JustesenCode::new(6, 20);
        let cw = c.encode(&vec![0u64; c.input_bits().div_ceil(64)]);
        assert!(cw.iter().all(|&w| w == 0));
    }

    #[test]
    fn encoding_is_linear() {
        let c = JustesenCode::new(6, 10);
        let words = c.input_bits().div_ceil(64);
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let ab: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        let ca = c.encode(&a);
        let cb = c.encode(&b);
        let cab = c.encode(&ab);
        for i in 0..ca.len() {
            assert_eq!(cab[i], ca[i] ^ cb[i]);
        }
    }

    #[test]
    fn certified_distance_holds_on_random_pairs() {
        let c = JustesenCode::new(6, 21); // N=63, certified distance 43
        let words = c.input_bits().div_ceil(64);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let mut b = a.clone();
            b[0] ^= 1u64 << rng.gen_range(0..64u32);
            let d = hamming_distance(&c.encode(&a), &c.encode(&b), c.output_bits());
            assert!(
                d >= c.certified_min_distance(),
                "distance {d} below certified {}",
                c.certified_min_distance()
            );
        }
    }

    #[test]
    fn measured_distance_beats_certified() {
        // The ensemble argument: real distance is far above N-K+1 bits.
        let c = JustesenCode::rate_one_third(8);
        let mut rng = StdRng::seed_from_u64(3);
        let d = sampled_min_distance(&c, 200, &mut rng);
        assert!(
            d > 2 * c.certified_min_distance(),
            "sampled distance {d} not well above certified {}",
            c.certified_min_distance()
        );
    }

    #[test]
    fn wozencraft_pairing_structure() {
        // For a constant polynomial, position i holds (c, α^i·c): the
        // first half-symbol is constant, the second varies.
        let c = JustesenCode::new(4, 1);
        let msg = [0b0101u64]; // single symbol 5
        let cw = c.encode(&msg);
        let m = c.symbol_bits();
        let first = super::get_bits(&cw, 0, m);
        assert_eq!(first, 5);
        let mut paired_values = std::collections::HashSet::new();
        for i in 0..c.outer_length() {
            paired_values.insert(super::get_bits(&cw, (2 * i + 1) * m, m));
        }
        // α^i·5 takes every nonzero value exactly once over the period.
        assert_eq!(paired_values.len(), c.outer_length());
    }

    #[test]
    #[should_panic(expected = "outer dimension")]
    fn oversized_dimension_panics() {
        let _ = JustesenCode::new(4, 16);
    }

    #[test]
    fn decode_clean_round_trip() {
        let c = JustesenCode::rate_one_third(5); // N=31, K=20, radius 5
        assert_eq!(c.certified_correction_radius(), 5);
        let words = c.input_bits().div_ceil(64);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let mut msg: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            // Mask bits past input_bits so the round trip is exact.
            let extra = words * 64 - c.input_bits();
            if extra > 0 {
                *msg.last_mut().unwrap() &= u64::MAX >> extra;
            }
            let cw = c.encode(&msg);
            assert_eq!(c.decode(&cw).expect("clean decode"), msg);
        }
    }

    #[test]
    fn decode_corrects_up_to_radius() {
        let c = JustesenCode::rate_one_third(5);
        let words = c.input_bits().div_ceil(64);
        let out_bits = c.output_bits();
        let mut rng = StdRng::seed_from_u64(12);
        for trial in 0..50 {
            let mut msg: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            let extra = words * 64 - c.input_bits();
            if extra > 0 {
                *msg.last_mut().unwrap() &= u64::MAX >> extra;
            }
            let mut cw = c.encode(&msg);
            let t = rng.gen_range(1..=c.certified_correction_radius());
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < t {
                flipped.insert(rng.gen_range(0..out_bits));
            }
            for &bit in &flipped {
                cw[bit / 64] ^= 1u64 << (bit % 64);
            }
            assert_eq!(
                c.decode(&cw).unwrap_or_else(|e| panic!(
                    "trial {trial}: {t} flips within radius failed: {e}"
                )),
                msg
            );
        }
    }

    #[test]
    fn decode_rejects_overwhelming_corruption() {
        // Far beyond the radius the decoder must not silently return
        // the original message: it either fails or lands on a
        // different (nearer) codeword.
        let c = JustesenCode::rate_one_third(5);
        let words = c.input_bits().div_ceil(64);
        let mut rng = StdRng::seed_from_u64(13);
        let mut msg: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let extra = words * 64 - c.input_bits();
        if extra > 0 {
            *msg.last_mut().unwrap() &= u64::MAX >> extra;
        }
        let mut cw = c.encode(&msg);
        // Flip roughly half of all wire bits.
        for bit in (0..c.output_bits()).step_by(2) {
            cw[bit / 64] ^= 1u64 << (bit % 64);
        }
        match c.decode(&cw) {
            Err(e) => assert_eq!(e.capacity(), Some(c.certified_correction_radius())),
            Ok(decoded) => assert_ne!(decoded, msg),
        }
    }
}
