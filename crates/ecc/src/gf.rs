//! Finite-field arithmetic in `GF(2^m)` for `2 ≤ m ≤ 16`.
//!
//! Elements are represented as integers in `[0, 2^m)`; addition is XOR;
//! multiplication uses log/antilog tables built from a primitive
//! polynomial, so every operation is O(1).

/// Primitive polynomials (feedback masks, excluding the x^m term) for
/// GF(2^m), m = 2..=16. Standard table values.
const PRIMITIVE_POLY: [u32; 15] = [
    0b111,               // m=2:  x^2+x+1
    0b1011,              // m=3:  x^3+x+1
    0b10011,             // m=4:  x^4+x+1
    0b100101,            // m=5:  x^5+x^2+1
    0b1000011,           // m=6:  x^6+x+1
    0b10001001,          // m=7:  x^7+x^3+1
    0b100011101,         // m=8:  x^8+x^4+x^3+x^2+1
    0b1000010001,        // m=9:  x^9+x^4+1
    0b10000001001,       // m=10: x^10+x^3+1
    0b100000000101,      // m=11: x^11+x^2+1
    0b1000001010011,     // m=12: x^12+x^6+x^4+x+1
    0b10000000011011,    // m=13: x^13+x^4+x^3+x+1
    0b100010001000011,   // m=14: x^14+x^10+x^6+x+1
    0b1000000000000011,  // m=15: x^15+x+1
    0b10001000000001011, // m=16: x^16+x^12+x^3+x+1
];

/// The field `GF(2^m)` with precomputed log/antilog tables.
#[derive(Debug, Clone)]
pub struct GaloisField {
    m: u32,
    size: usize,
    exp: Vec<u16>,
    log: Vec<u16>,
}

impl GaloisField {
    /// Constructs `GF(2^m)`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ m ≤ 16`.
    pub fn new(m: u32) -> Self {
        assert!((2..=16).contains(&m), "GF(2^m) supported for 2 <= m <= 16");
        let poly = PRIMITIVE_POLY[(m - 2) as usize];
        let size = 1usize << m;
        let order = size - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u16; size];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(order) {
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        // Duplicate the exp table so exp[a+b] never needs a mod.
        let (lo, hi) = exp.split_at_mut(order);
        hi.copy_from_slice(lo);
        GaloisField { m, size, exp, log }
    }

    /// The extension degree `m`.
    pub fn degree(&self) -> u32 {
        self.m
    }

    /// The field size `2^m`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    ///
    /// # Panics
    ///
    /// Debug-panics if an operand is outside the field.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!((a as usize) < self.size && (b as usize) < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "zero has no inverse");
        let order = self.size - 1;
        self.exp[order - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        self.mul(a, self.inv(b))
    }

    /// `a^e` by repeated squaring over the log table.
    pub fn pow(&self, a: u16, e: u64) -> u16 {
        if e == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let order = (self.size - 1) as u64;
        let l = self.log[a as usize] as u64;
        self.exp[((l * (e % order)) % order) as usize]
    }

    /// The `i`-th power of the primitive element α (i.e. `α^i`).
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % (self.size - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_field_multiplication_table() {
        // GF(4) = {0, 1, a, a+1} with a^2 = a+1.
        let f = GaloisField::new(2);
        assert_eq!(f.mul(2, 2), 3); // a * a = a + 1
        assert_eq!(f.mul(2, 3), 1); // a * (a+1) = 1
        assert_eq!(f.mul(3, 3), 2); // (a+1)^2 = a
    }

    #[test]
    fn mul_zero_and_one() {
        let f = GaloisField::new(8);
        for a in 0..256u16 {
            assert_eq!(f.mul(a, 0), 0);
            assert_eq!(f.mul(a, 1), a);
        }
    }

    #[test]
    fn mul_is_commutative_and_associative() {
        let f = GaloisField::new(6);
        for a in 0..64u16 {
            for b in 0..64u16 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
            }
        }
        // Associativity spot-check.
        for &(a, b, c) in &[(3u16, 17, 42), (9, 9, 9), (62, 1, 35)] {
            assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        }
    }

    #[test]
    fn distributive_law() {
        let f = GaloisField::new(5);
        for a in 0..32u16 {
            for b in 0..32u16 {
                for c in [0u16, 1, 7, 19, 31] {
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        for m in [2u32, 4, 8, 12, 16] {
            let f = GaloisField::new(m);
            for a in 1..f.size().min(500) as u16 {
                assert_eq!(f.mul(a, f.inv(a)), 1, "m={m}, a={a}");
            }
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        let f = GaloisField::new(8);
        for a in 0..256u16 {
            for b in [1u16, 2, 17, 255] {
                assert_eq!(f.div(f.mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = GaloisField::new(8);
        for a in [0u16, 1, 2, 37, 200] {
            let mut acc = 1u16;
            for e in 0..10u64 {
                assert_eq!(f.pow(a, e), acc, "a={a}, e={e}");
                acc = f.mul(acc, a);
            }
        }
    }

    #[test]
    fn primitive_element_generates_all_nonzero() {
        let f = GaloisField::new(8);
        let mut seen = vec![false; 256];
        for i in 0..255 {
            let v = f.alpha_pow(i) as usize;
            assert!(!seen[v], "alpha^{i} repeats");
            seen[v] = true;
        }
        assert!(!seen[0], "alpha powers must be nonzero");
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        let f = GaloisField::new(4);
        let _ = f.inv(0);
    }

    #[test]
    #[should_panic(expected = "supported")]
    fn degree_out_of_range_panics() {
        let _ = GaloisField::new(17);
    }
}
