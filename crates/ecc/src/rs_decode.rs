//! Reed–Solomon decoding via the Berlekamp–Welch algorithm.
//!
//! The uniformity-testing protocols only ever *encode* (the Equality
//! referee compares codeword chunks, never reconstructs), but a code
//! library without a decoder is half a library. Berlekamp–Welch
//! corrects up to `e = ⌊(N−K)/2⌋` symbol errors by solving one linear
//! system over `GF(2^m)`:
//!
//! find `E(x)` (monic, degree `e`) and `Q(x)` (degree `< K+e`) with
//! `Q(aᵢ) = rᵢ·E(aᵢ)` at every evaluation point; then the message
//! polynomial is `Q(x)/E(x)`.
//!
//! The solver core (`berlekamp_welch`) is parameterized by the
//! evaluation points, because [`crate::rs::RsCode`] and the outer code
//! of [`crate::justesen::JustesenCode`] evaluate at *different* point
//! sequences (`0, α⁰, α¹, …` versus `α⁰ … α^{N−1}`); both decoders
//! share it.

use crate::gf::GaloisField;
use crate::rs::RsCode;
use std::error::Error;
use std::fmt;

/// Decoding failure. Decoders must be total on adversarial input —
/// coded protocol paths feed them whatever arrives off the wire — so
/// every rejection is a typed variant here, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// More errors than the code can correct (or an inconsistent word).
    BeyondCapacity {
        /// The maximum number of errors the code can correct — outer
        /// *symbols* for [`crate::rs::RsCode`], wire *bits* for
        /// [`crate::justesen::JustesenCode`].
        capacity: usize,
    },
    /// The received word has the wrong length — exactly `N` symbols for
    /// [`crate::rs::RsCode`], at least `output_bits` bits for
    /// [`crate::justesen::JustesenCode`].
    WrongLength {
        /// The length the decoder requires (symbols for RS, bits for
        /// Justesen).
        expected: usize,
        /// The length actually received (in the same unit).
        actual: usize,
    },
}

impl DecodeError {
    /// The error capacity for [`DecodeError::BeyondCapacity`], `None`
    /// otherwise. Convenience for call sites that only care about the
    /// undecodable case.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            DecodeError::BeyondCapacity { capacity } => Some(*capacity),
            DecodeError::WrongLength { .. } => None,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BeyondCapacity { capacity } => write!(
                f,
                "received word is not decodable within {capacity} symbol errors"
            ),
            DecodeError::WrongLength { expected, actual } => write!(
                f,
                "received word has length {actual}, decoder requires {expected}"
            ),
        }
    }
}

impl Error for DecodeError {}

/// Gaussian elimination over `GF(2^m)`: solves `A·x = b` in place.
/// Returns `None` if the system is singular in a way that admits no
/// solution (free variables are set to zero).
#[allow(clippy::needless_range_loop)]
fn solve_linear(field: &GaloisField, mut a: Vec<Vec<u16>>, mut b: Vec<u16>) -> Option<Vec<u16>> {
    let rows = a.len();
    let cols = if rows == 0 { 0 } else { a[0].len() };
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut row = 0usize;
    for col in 0..cols {
        if row >= rows {
            break;
        }
        // Find a pivot.
        let Some(p) = (row..rows).find(|&r| a[r][col] != 0) else {
            continue;
        };
        a.swap(row, p);
        b.swap(row, p);
        // Normalize the pivot row.
        let inv = field.inv(a[row][col]);
        for v in a[row].iter_mut() {
            *v = field.mul(*v, inv);
        }
        b[row] = field.mul(b[row], inv);
        // Eliminate the column everywhere else.
        for r in 0..rows {
            if r != row && a[r][col] != 0 {
                let factor = a[r][col];
                for c in 0..cols {
                    let sub = field.mul(factor, a[row][c]);
                    a[r][c] = field.add(a[r][c], sub);
                }
                let sub = field.mul(factor, b[row]);
                b[r] = field.add(b[r], sub);
            }
        }
        pivot_of_col[col] = Some(row);
        row += 1;
    }
    // Inconsistency: a zero row with nonzero rhs.
    for r in row..rows {
        if b[r] != 0 {
            return None;
        }
    }
    // Read off the solution (free variables = 0).
    let mut x = vec![0u16; cols];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(r) = pivot {
            x[col] = b[*r];
        }
    }
    Some(x)
}

/// Polynomial long division `num / den` over the field; returns
/// `(quotient, remainder)`, or `None` when `den` is the zero
/// polynomial. Leading zeros are tolerated. Degenerate divisors are a
/// decode failure for the callers, not a programming error, so this
/// must not panic.
fn poly_div(field: &GaloisField, num: &[u16], den: &[u16]) -> Option<(Vec<u16>, Vec<u16>)> {
    let deg = |p: &[u16]| p.iter().rposition(|&c| c != 0);
    let dd = deg(den)?;
    let mut rem: Vec<u16> = num.to_vec();
    let mut quot = vec![0u16; num.len().max(1)];
    while let Some(dn) = deg(&rem) {
        if dn < dd {
            break;
        }
        let factor = field.div(rem[dn], den[dd]);
        let shift = dn - dd;
        quot[shift] = field.add(quot[shift], factor);
        for (i, &dc) in den.iter().enumerate().take(dd + 1) {
            let sub = field.mul(factor, dc);
            rem[i + shift] = field.add(rem[i + shift], sub);
        }
    }
    Some((quot, rem))
}

/// Horner evaluation of `coeffs` (low-order first) at `x`.
fn eval_poly(field: &GaloisField, coeffs: &[u16], x: u16) -> u16 {
    let mut acc = 0u16;
    for &c in coeffs.iter().rev() {
        acc = field.add(field.mul(acc, x), c);
    }
    acc
}

/// The Berlekamp–Welch core over arbitrary distinct evaluation points:
/// finds the unique polynomial of degree `< k` whose evaluations at
/// `points` are within `e = ⌊(points.len() − k) / 2⌋` symbol errors of
/// `received`, returning its `k` coefficients (low-order first).
/// Returns `None` when no codeword lies within the error capacity.
///
/// Shared by [`RsCode::decode`] and
/// [`crate::justesen::JustesenCode::decode`], whose outer codes use
/// different point sequences.
pub(crate) fn berlekamp_welch(
    field: &GaloisField,
    points: &[u16],
    received: &[u16],
    k: usize,
) -> Option<Vec<u16>> {
    let n = points.len();
    debug_assert_eq!(received.len(), n);
    let e = (n - k) / 2;

    // Unknowns: Q_0..Q_{k+e-1}, E_0..E_{e-1}  (E_e = 1 monic).
    // Equation i: Σ_j Q_j a_i^j + r_i·Σ_{j<e} E_j a_i^j = r_i·a_i^e.
    let cols = k + 2 * e;
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    for (i, &ai) in points.iter().enumerate() {
        let ri = received[i];
        let mut row = vec![0u16; cols];
        let mut pw = 1u16;
        for cell in row.iter_mut().take(k + e) {
            *cell = pw;
            pw = field.mul(pw, ai);
        }
        let mut pw = 1u16;
        for cell in row.iter_mut().skip(k + e) {
            *cell = field.mul(ri, pw);
            pw = field.mul(pw, ai);
        }
        // rhs: r_i · a_i^e
        let rhs = field.mul(ri, field.pow(ai, e as u64));
        a.push(row);
        b.push(rhs);
    }
    let x = solve_linear(field, a, b)?;

    let q: Vec<u16> = x[..k + e].to_vec();
    let mut err_loc: Vec<u16> = x[k + e..].to_vec();
    err_loc.push(1); // monic x^e term

    let (msg, rem) = poly_div(field, &q, &err_loc)?;
    if rem.iter().any(|&c| c != 0) {
        return None;
    }
    let mut message = vec![0u16; k];
    for (i, slot) in message.iter_mut().enumerate() {
        *slot = msg.get(i).copied().unwrap_or(0);
    }
    // Degree check: Q/E must have degree < k.
    if msg.iter().skip(k).any(|&c| c != 0) {
        return None;
    }
    // Verify: the decoded message must be within e of the received
    // word (guards against a consistent-but-wrong solve).
    let dist = points
        .iter()
        .zip(received)
        .filter(|&(&p, &r)| eval_poly(field, &message, p) != r)
        .count();
    if dist > e {
        return None;
    }
    Some(message)
}

impl RsCode<'_> {
    /// Decodes a received word (length `N`), correcting up to
    /// `⌊(N−K)/2⌋` symbol errors, and returns the `K` message symbols.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::WrongLength`] if `received` does not have
    /// exactly `N` symbols, and [`DecodeError::BeyondCapacity`] when
    /// the word is not within the error capacity of any codeword.
    pub fn decode(&self, received: &[u16]) -> Result<Vec<u16>, DecodeError> {
        let n = self.length();
        let k = self.dimension();
        if received.len() != n {
            return Err(DecodeError::WrongLength {
                expected: n,
                actual: received.len(),
            });
        }
        let capacity = (n - k) / 2;
        berlekamp_welch(self.field(), self.points(), received, k)
            .ok_or(DecodeError::BeyondCapacity { capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (GaloisField, Vec<u16>) {
        let f = GaloisField::new(8);
        let msg = vec![17u16, 42, 3, 99, 200, 1, 0, 255];
        (f, msg)
    }

    #[test]
    fn decodes_clean_word() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 32, 8);
        let cw = rs.encode(&msg);
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn corrects_up_to_capacity() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 32, 8); // e = 12
        let mut rng = StdRng::seed_from_u64(1);
        for errors in 1..=12usize {
            let mut cw = rs.encode(&msg);
            let mut positions: Vec<usize> = (0..32).collect();
            for i in (1..32).rev() {
                let j = rng.gen_range(0..=i);
                positions.swap(i, j);
            }
            for &pos in positions.iter().take(errors) {
                cw[pos] ^= 1 + rng.gen_range(0..255) as u16;
            }
            assert_eq!(rs.decode(&cw).unwrap(), msg, "failed at {errors} errors");
        }
    }

    #[test]
    fn rejects_beyond_capacity() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 16, 8); // e = 4
        let mut cw = rs.encode(&msg);
        // Corrupt 9 of 16 positions: closer to some other codeword or
        // undecodable; either way the true message must not come back
        // silently wrong without detection in *most* cases — here we
        // only require no panic and a well-formed result.
        let mut rng = StdRng::seed_from_u64(2);
        for c in cw.iter_mut().take(9) {
            *c ^= 1 + rng.gen_range(0..255) as u16;
        }
        match rs.decode(&cw) {
            Ok(decoded) => {
                // If it decodes, it must decode to a codeword within
                // capacity of the received word.
                let re = rs.encode(&decoded);
                let d = re.iter().zip(&cw).filter(|(a, b)| a != b).count();
                assert!(d <= 4);
            }
            Err(e) => assert_eq!(e, DecodeError::BeyondCapacity { capacity: 4 }),
        }
    }

    #[test]
    fn zero_capacity_code_detects_any_error() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 9, 8); // e = 0
        let mut cw = rs.encode(&msg);
        assert_eq!(rs.decode(&cw).unwrap(), msg);
        cw[0] ^= 5;
        assert!(rs.decode(&cw).is_err());
    }

    #[test]
    fn burst_errors_at_start() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 40, 8); // e = 16
        let mut cw = rs.encode(&msg);
        for c in cw.iter_mut().take(16) {
            *c ^= 0xAA;
        }
        assert_eq!(rs.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn random_round_trips() {
        let f = GaloisField::new(6);
        let rs = RsCode::new(&f, 60, 20); // e = 20
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let msg: Vec<u16> = (0..20).map(|_| rng.gen_range(0..64)).collect();
            let mut cw = rs.encode(&msg);
            let errors = rng.gen_range(0..=20);
            let mut positions: Vec<usize> = (0..60).collect();
            for i in (1..60).rev() {
                let j = rng.gen_range(0..=i);
                positions.swap(i, j);
            }
            for &pos in positions.iter().take(errors) {
                cw[pos] ^= 1 + rng.gen_range(0..63) as u16;
            }
            assert_eq!(rs.decode(&cw).unwrap(), msg, "{errors} errors");
        }
    }

    #[test]
    fn wrong_length_is_typed_error() {
        let (f, msg) = setup();
        let rs = RsCode::new(&f, 16, 8);
        let cw = rs.encode(&msg);
        assert_eq!(
            rs.decode(&cw[..10]).unwrap_err(),
            DecodeError::WrongLength {
                expected: 16,
                actual: 10
            }
        );
        let mut long = cw.clone();
        long.push(0);
        assert!(matches!(
            rs.decode(&long).unwrap_err(),
            DecodeError::WrongLength { actual: 17, .. }
        ));
    }

    #[test]
    fn poly_div_basic() {
        let f = GaloisField::new(4);
        // (x^2 + 1) = (x + 1)(x + 1) over GF(2^m)
        let num = vec![1u16, 0, 1];
        let den = vec![1u16, 1];
        let (q, r) = poly_div(&f, &num, &den).unwrap();
        assert!(r.iter().all(|&c| c == 0));
        assert_eq!(&q[..2], &[1, 1]);
    }

    #[test]
    fn poly_div_by_zero_polynomial_is_none() {
        let f = GaloisField::new(4);
        assert!(poly_div(&f, &[1u16, 0, 1], &[0u16, 0]).is_none());
        assert!(poly_div(&f, &[1u16], &[]).is_none());
    }
}
