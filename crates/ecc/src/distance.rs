//! Hamming distance and minimum-distance estimation utilities.

use crate::BinaryCode;
use rand::Rng;

/// Hamming distance between two bit-packed words slices, counting only
/// the first `bits` bits.
///
/// # Panics
///
/// Panics if either slice is too short for `bits`.
pub fn hamming_distance(a: &[u64], b: &[u64], bits: usize) -> usize {
    let words = bits.div_ceil(64);
    assert!(a.len() >= words && b.len() >= words, "slices too short");
    let mut d = 0usize;
    for i in 0..words {
        let mut x = a[i] ^ b[i];
        if i == words - 1 && !bits.is_multiple_of(64) {
            x &= (1u64 << (bits % 64)) - 1;
        }
        d += x.count_ones() as usize;
    }
    d
}

/// Hamming weight of the first `bits` bits.
pub fn hamming_weight(a: &[u64], bits: usize) -> usize {
    let zeros = vec![0u64; bits.div_ceil(64)];
    hamming_distance(a, &zeros, bits)
}

/// Exact minimum distance of a *linear* code by exhaustive enumeration
/// of all nonzero messages — feasible for input lengths up to ~20 bits.
///
/// # Panics
///
/// Panics if `code.input_bits() > 24` (enumeration would be too slow).
pub fn exact_min_distance_linear(code: &dyn BinaryCode) -> usize {
    let k = code.input_bits();
    assert!(k <= 24, "exhaustive enumeration limited to 24-bit inputs");
    let mut min_d = usize::MAX;
    for msg in 1u64..(1u64 << k) {
        let cw = code.encode(&[msg]);
        min_d = min_d.min(hamming_weight(&cw, code.output_bits()));
    }
    min_d
}

/// Estimates the minimum distance of any code by sampling random
/// distinct message pairs; returns the smallest distance observed.
/// An upper bound on the true minimum distance (and for well-behaved
/// ensembles, a useful indicator).
pub fn sampled_min_distance<R: Rng + ?Sized>(
    code: &dyn BinaryCode,
    pairs: usize,
    rng: &mut R,
) -> usize {
    let k = code.input_bits();
    let words = k.div_ceil(64);
    let mask_last = if k.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (k % 64)) - 1
    };
    let mut min_d = usize::MAX;
    for _ in 0..pairs {
        let mut a: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let mut b: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        a[words - 1] &= mask_last;
        b[words - 1] &= mask_last;
        if a == b {
            continue;
        }
        let ca = code.encode(&a);
        let cb = code.encode(&b);
        min_d = min_d.min(hamming_distance(&ca, &cb, code.output_bits()));
    }
    min_d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_distance_basic() {
        assert_eq!(hamming_distance(&[0b1010], &[0b0110], 4), 2);
        assert_eq!(hamming_distance(&[u64::MAX], &[0], 64), 64);
        assert_eq!(hamming_distance(&[u64::MAX], &[0], 10), 10);
    }

    #[test]
    fn hamming_distance_multiword() {
        let a = [u64::MAX, 0b111];
        let b = [0u64, 0];
        assert_eq!(hamming_distance(&a, &b, 67), 67);
        assert_eq!(hamming_distance(&a, &b, 66), 66);
    }

    #[test]
    fn weight_equals_distance_from_zero() {
        assert_eq!(hamming_weight(&[0b1011], 4), 3);
        assert_eq!(hamming_weight(&[0], 64), 0);
    }

    #[test]
    fn exact_min_distance_of_repetition_code() {
        /// 1 bit → 5 copies.
        #[derive(Debug)]
        struct Rep5;
        impl crate::BinaryCode for Rep5 {
            fn input_bits(&self) -> usize {
                1
            }
            fn output_bits(&self) -> usize {
                5
            }
            fn encode(&self, message: &[u64]) -> Vec<u64> {
                vec![if message[0] & 1 == 1 { 0b11111 } else { 0 }]
            }
        }
        assert_eq!(exact_min_distance_linear(&Rep5), 5);
    }
}
