//! Reed–Solomon codes over `GF(2^m)` (evaluation encoding).
//!
//! The message `(c_0, …, c_{K−1})` defines the polynomial
//! `p(x) = Σ c_i x^i`, and the codeword is `(p(a_1), …, p(a_N))` for `N`
//! distinct evaluation points. Since a nonzero degree-`< K` polynomial
//! has at most `K−1` roots, distinct messages agree on at most `K−1`
//! positions: the code is MDS with distance `N − K + 1`.

use crate::gf::GaloisField;

/// A Reed–Solomon code `[N, K]` over a shared field.
#[derive(Debug, Clone)]
pub struct RsCode<'f> {
    field: &'f GaloisField,
    n: usize,
    k: usize,
    /// Evaluation points: `0, α^0, α^1, …` (distinct field elements).
    points: Vec<u16>,
}

impl<'f> RsCode<'f> {
    /// Creates an `[n, k]` RS code over `field`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ n ≤ 2^m` (need `n` distinct evaluation
    /// points).
    pub fn new(field: &'f GaloisField, n: usize, k: usize) -> Self {
        assert!(k >= 1, "dimension must be positive");
        assert!(k <= n, "dimension cannot exceed length");
        assert!(
            n <= field.size(),
            "length {n} exceeds number of field elements {}",
            field.size()
        );
        // Points: 0 first, then consecutive powers of alpha.
        let mut points = Vec::with_capacity(n);
        points.push(0u16);
        for i in 0..n.saturating_sub(1) {
            points.push(field.alpha_pow(i));
        }
        RsCode {
            field,
            n,
            k,
            points,
        }
    }

    /// Code length `N` (symbols).
    pub fn length(&self) -> usize {
        self.n
    }

    /// Code dimension `K` (symbols).
    pub fn dimension(&self) -> usize {
        self.k
    }

    /// The MDS distance `N − K + 1`.
    pub fn distance(&self) -> usize {
        self.n - self.k + 1
    }

    /// The underlying field (shared with the decoder).
    pub fn field(&self) -> &GaloisField {
        self.field
    }

    /// The evaluation points, in codeword order.
    pub fn points(&self) -> &[u16] {
        &self.points
    }

    /// Encodes `message` (`K` field symbols) into `N` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != K` or a symbol is out of the field.
    pub fn encode(&self, message: &[u16]) -> Vec<u16> {
        assert_eq!(message.len(), self.k, "message must have K symbols");
        for &c in message {
            assert!((c as usize) < self.field.size(), "symbol out of field");
        }
        self.points.iter().map(|&x| self.eval(message, x)).collect()
    }

    /// Horner evaluation of the message polynomial at `x`.
    fn eval(&self, message: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in message.iter().rev() {
            acc = self.field.add(self.field.mul(acc, x), c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn hamming(a: &[u16], b: &[u16]) -> usize {
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    }

    #[test]
    fn constant_polynomial_encodes_constantly() {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 10, 1);
        let cw = rs.encode(&[7]);
        assert!(cw.iter().all(|&s| s == 7));
    }

    #[test]
    fn zero_message_gives_zero_codeword() {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 20, 5);
        let cw = rs.encode(&[0; 5]);
        assert!(cw.iter().all(|&s| s == 0));
    }

    #[test]
    fn mds_distance_on_random_pairs() {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 64, 16);
        let d = rs.distance(); // 49
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a: Vec<u16> = (0..16).map(|_| rng.gen_range(0..256)).collect();
            let mut b = a.clone();
            // flip one random symbol to make a distinct message
            let idx = rng.gen_range(0..16usize);
            b[idx] ^= 1 + rng.gen_range(0..255) as u16;
            let ca = rs.encode(&a);
            let cb = rs.encode(&b);
            assert!(hamming(&ca, &cb) >= d, "pair closer than MDS distance {d}");
        }
    }

    #[test]
    fn exhaustive_distance_tiny_code() {
        // [7, 2] over GF(8): distance must be exactly 6.
        let f = GaloisField::new(3);
        let rs = RsCode::new(&f, 7, 2);
        let mut min_d = usize::MAX;
        for m0 in 0..8u16 {
            for m1 in 0..8u16 {
                if (m0, m1) == (0, 0) {
                    continue;
                }
                // linear code: min distance = min weight
                let cw = rs.encode(&[m0, m1]);
                let w = cw.iter().filter(|&&s| s != 0).count();
                min_d = min_d.min(w);
            }
        }
        assert_eq!(min_d, rs.distance());
    }

    #[test]
    fn encoding_is_linear() {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 32, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<u16> = (0..8).map(|_| rng.gen_range(0..256)).collect();
        let b: Vec<u16> = (0..8).map(|_| rng.gen_range(0..256)).collect();
        let sum: Vec<u16> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        let ca = rs.encode(&a);
        let cb = rs.encode(&b);
        let csum = rs.encode(&sum);
        for i in 0..32 {
            assert_eq!(csum[i], ca[i] ^ cb[i]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds number of field elements")]
    fn length_beyond_field_panics() {
        let f = GaloisField::new(3);
        let _ = RsCode::new(&f, 9, 2);
    }

    #[test]
    #[should_panic(expected = "message must have K symbols")]
    fn wrong_message_length_panics() {
        let f = GaloisField::new(4);
        let rs = RsCode::new(&f, 10, 3);
        let _ = rs.encode(&[1, 2]);
    }
}
