//! Error-correcting codes for the asymmetric-error Equality protocol.
//!
//! The paper's Lemma 7.3 protocol needs an explicit code
//! `C : {0,1}^{m/3} → {0,1}^m` with relative distance ≥ 1/6 (any pair of
//! distinct codewords differs in at least `m/6` positions); it names the
//! *Justesen code*. This crate provides:
//!
//! * [`gf`] — `GF(2^m)` arithmetic via log/antilog tables (m ≤ 16).
//! * [`rs`] — Reed–Solomon codes over `GF(2^m)` (MDS: distance
//!   `N−K+1`).
//! * [`justesen`] — the Justesen-style concatenation: RS outer code,
//!   Wozencraft-ensemble inner codes `x ↦ (x, αᵢx)`.
//! * [`linear`] — seeded random linear codes, which meet the
//!   Gilbert–Varshamov bound w.h.p. — at rate 1/3 that gives relative
//!   distance ≈ 0.174 > 1/6, matching the parameters Lemma 7.3 quotes.
//! * [`distance`] — Hamming distance/weight utilities, exact
//!   minimum-distance computation for small codes, and sampled distance
//!   estimation for large ones.
//!
//! **Which code does the protocol use?** The Justesen construction is
//! implemented faithfully, but its *guaranteed* distance at rate 1/3 is
//! below 1/6 (the Justesen bound gives `(1−2R)·H⁻¹(1/2) ≈ 0.037` at
//! `R = 1/3`); the paper's quoted parameters match the GV bound, which
//! random linear codes achieve. The SMP crate therefore defaults to
//! [`linear::RandomLinearCode`] and offers Justesen as an alternative —
//! the substitution is recorded in DESIGN.md and is immaterial to the
//! protocol, which uses the code only through its distance property.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distance;
pub mod gf;
pub mod justesen;
pub mod linear;
pub mod rs;
pub mod rs_decode;

pub use gf::GaloisField;
pub use justesen::JustesenCode;
pub use linear::RandomLinearCode;

/// A binary block code: a deterministic injective map from `input_bits`
/// to `output_bits`.
pub trait BinaryCode {
    /// Input (message) length in bits.
    fn input_bits(&self) -> usize;

    /// Output (codeword) length in bits.
    fn output_bits(&self) -> usize;

    /// Encodes `message` (little-endian bit order, `input_bits` bits,
    /// packed in `u64` words) into a codeword (same packing).
    ///
    /// # Panics
    ///
    /// Panics if `message` has fewer than `⌈input_bits/64⌉` words.
    fn encode(&self, message: &[u64]) -> Vec<u64>;

    /// The code rate `input_bits / output_bits`.
    fn rate(&self) -> f64 {
        self.input_bits() as f64 / self.output_bits() as f64
    }
}
