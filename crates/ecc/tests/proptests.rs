//! Property-based tests for the code constructions.

use dut_ecc::distance::{hamming_distance, hamming_weight};
use dut_ecc::gf::GaloisField;
use dut_ecc::rs::RsCode;
use dut_ecc::{BinaryCode, JustesenCode, RandomLinearCode};
use proptest::prelude::*;

proptest! {
    #[test]
    fn gf_field_axioms(m in 2u32..9, a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let f = GaloisField::new(m);
        let mask = (f.size() - 1) as u16;
        let (a, b, c) = (a & mask, b & mask, c & mask);
        // commutativity
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // associativity
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        // distributivity
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        // inverses
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    fn gf_pow_is_iterated_mul(m in 2u32..9, a in any::<u16>(), e in 0u64..20) {
        let f = GaloisField::new(m);
        let a = a & (f.size() - 1) as u16;
        let mut acc = 1u16;
        for _ in 0..e {
            acc = f.mul(acc, a);
        }
        prop_assert_eq!(f.pow(a, e), acc);
    }

    #[test]
    fn rs_codewords_respect_mds_distance(
        msg_a in proptest::collection::vec(0u16..256, 8),
        msg_b in proptest::collection::vec(0u16..256, 8),
    ) {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 40, 8);
        if msg_a != msg_b {
            let ca = rs.encode(&msg_a);
            let cb = rs.encode(&msg_b);
            let d = ca.iter().zip(&cb).filter(|(x, y)| x != y).count();
            prop_assert!(d >= rs.distance(), "distance {d} < MDS {}", rs.distance());
        }
    }

    #[test]
    fn linear_code_linearity(k_words in 1usize..4, seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let k = k_words * 64;
        let code = RandomLinearCode::new(k, 3 * k, seed);
        let ma = vec![a; k_words];
        let mb = vec![b; k_words];
        let mab: Vec<u64> = ma.iter().zip(&mb).map(|(&x, &y)| x ^ y).collect();
        let ca = code.encode(&ma);
        let cb = code.encode(&mb);
        let cab = code.encode(&mab);
        for i in 0..ca.len() {
            prop_assert_eq!(cab[i], ca[i] ^ cb[i]);
        }
    }

    #[test]
    fn justesen_certified_distance(seed_bits in any::<u64>()) {
        let c = JustesenCode::new(6, 21);
        let words = c.input_bits().div_ceil(64);
        let za = vec![0u64; words];
        let mut zb = za.clone();
        zb[0] ^= seed_bits | 1; // any nonzero message
        let ca = c.encode(&za);
        let cb = c.encode(&zb);
        let d = hamming_distance(&ca, &cb, c.output_bits());
        prop_assert!(d >= c.certified_min_distance());
    }

    #[test]
    fn hamming_distance_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>(), bits in 1usize..64) {
        let d = |x: u64, y: u64| hamming_distance(&[x], &[y], bits);
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert_eq!(d(a, a), 0);
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
        prop_assert_eq!(d(a, 0), hamming_weight(&[a], bits));
    }

    #[test]
    fn encode_is_deterministic(k in 8usize..128, seed in any::<u64>(), msg in any::<u64>()) {
        let code = RandomLinearCode::new(k, 2 * k, seed);
        let m = vec![msg & ((1u64 << k.min(63)) - 1); k.div_ceil(64)];
        prop_assert_eq!(code.encode(&m), code.encode(&m));
    }
}

proptest! {
    #[test]
    fn rs_decode_round_trips_under_errors(
        msg in proptest::collection::vec(0u16..256, 8),
        error_positions in proptest::collection::hash_set(0usize..32, 0..12),
        flips in proptest::collection::vec(1u16..256, 12),
    ) {
        let f = GaloisField::new(8);
        let rs = RsCode::new(&f, 32, 8); // corrects up to 12 errors
        let mut cw = rs.encode(&msg);
        for (i, &pos) in error_positions.iter().enumerate() {
            cw[pos] ^= flips[i % flips.len()];
        }
        prop_assert_eq!(rs.decode(&cw).unwrap(), msg);
    }
}
