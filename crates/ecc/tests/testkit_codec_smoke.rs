//! Seeded differential-fuzz smoke for the codecs, using the shared
//! drivers from `dut-testkit`. The full 10^4-case sweeps live in
//! `crates/testkit/tests/fuzz_drivers.rs`; these lanes keep a fast
//! regression signal inside the crate that owns the decoders.

use dut_testkit::fuzz::{fuzz_justesen_codec, fuzz_rs_codec};

#[test]
fn rs_codec_corruption_smoke() {
    fuzz_rs_codec(0xECC_5EED, 1_000).assert_contract();
}

#[test]
fn justesen_codec_corruption_smoke() {
    fuzz_justesen_codec(0xECC_5EEE, 600).assert_contract();
}
