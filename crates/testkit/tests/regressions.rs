//! Regression tests for the panic-safety sweep: one test per bug fixed
//! in the sweep, written against public APIs so each fails (panics)
//! against the seed code and passes against the typed-error fixes.

use dut_core::montecarlo::{estimate_failure_rate, MonteCarloError};
use dut_distributions::exact::{paninski_all_distinct_probability, paninski_rejection_probability};
use dut_distributions::{DiscreteDistribution, DistributionError};
use dut_ecc::rs_decode::DecodeError;
use dut_ecc::{BinaryCode, GaloisField, JustesenCode};

/// Seed bug: `RsCode::decode` asserted the received length with
/// `assert_eq!` — adversarial wire input could panic the decoder.
#[test]
fn rs_decode_wrong_length_is_typed() {
    let field = GaloisField::new(6);
    let rs = dut_ecc::rs::RsCode::new(&field, 24, 8);
    let cw = rs.encode(&[1, 2, 3, 4, 5, 6, 7, 8]);
    let short = &cw[..cw.len() - 1];
    assert_eq!(
        rs.decode(short),
        Err(DecodeError::WrongLength {
            expected: 24,
            actual: 23,
        })
    );
}

/// Seed bug: `JustesenCode::decode` panicked (via the same assert
/// path) on truncated wire words.
#[test]
fn justesen_decode_wrong_length_is_typed() {
    let code = JustesenCode::rate_one_third(4);
    let message = vec![0xABu64; code.input_bits().div_ceil(64)];
    let mut word = code.encode(&message);
    word.pop();
    match code.decode(&word) {
        Err(DecodeError::WrongLength { expected, .. }) => {
            assert_eq!(expected, code.output_bits());
        }
        other => panic!("expected WrongLength, got {other:?}"),
    }
}

/// Seed bug: `poly_div` panicked on a zero divisor polynomial, which a
/// degenerate Berlekamp–Welch solution can produce on garbage input.
/// Externally: heavily corrupted words must decode to a typed error,
/// never panic, for every corruption pattern.
#[test]
fn rs_decode_is_total_on_garbage() {
    let field = GaloisField::new(5);
    let rs = dut_ecc::rs::RsCode::new(&field, 20, 4);
    // All-same-symbol words and high-weight patterns drive the solver
    // into its degenerate corners.
    for s in 0..32u16 {
        let word = vec![s; 20];
        let _ = rs.decode(&word); // must return, Ok or Err
    }
}

/// Seed bug: `DiscreteDistribution::from_weights` accepted weight
/// vectors whose *sum* overflows to `+inf` (each entry individually
/// finite), then panicked inside the alias-table constructor.
#[test]
fn from_weights_overflowing_sum_is_typed() {
    let err = DiscreteDistribution::from_weights(vec![f64::MAX, f64::MAX]).unwrap_err();
    match err {
        DistributionError::NotNormalized { sum } => assert!(sum.is_infinite()),
        other => panic!("expected NotNormalized, got {other:?}"),
    }
}

/// Companion: individually non-finite weights were already typed in the
/// seed; the fix must not regress them.
#[test]
fn from_weights_non_finite_entries_stay_typed() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
        let err = DiscreteDistribution::from_weights(vec![1.0, bad]).unwrap_err();
        assert!(
            matches!(err, DistributionError::InvalidMass { index: 1, .. }),
            "weight {bad}: got {err:?}"
        );
    }
}

/// Seed bug: `estimate_failure_rate` panicked (`assert!`) on
/// `trials == 0` instead of returning a typed error.
#[test]
fn zero_trials_is_typed() {
    assert_eq!(
        estimate_failure_rate(0, 7, |_| false).unwrap_err(),
        MonteCarloError::ZeroTrials
    );
}

/// Seed bug: a panicking trial closure unwound through the scoped
/// thread shim, which replaced the payload with a generic "a scoped
/// thread panicked" — the original diagnostic was lost.
#[test]
fn trial_panic_payload_survives() {
    let caught = std::panic::catch_unwind(|| {
        let _ = estimate_failure_rate(64, 3, |_| panic!("testkit payload 0xCAFE"));
    })
    .expect_err("trials panic");
    let msg = caught
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("testkit payload 0xCAFE"),
        "payload lost: {msg:?}"
    );
}

/// Seed bug: `paninski_all_distinct_probability` panicked on `s == 0`
/// (vacuously all-distinct) and on ε a few ulps outside `[0, 1]` — the
/// kind of value `1/⌈1/ε⌉`-style experiment planning produces.
#[test]
fn paninski_edges_are_total() {
    assert_eq!(paninski_all_distinct_probability(100, 0.5, 0), 1.0);
    assert_eq!(paninski_rejection_probability(100, 0.5, 0), 0.0);
    // Endpoint rounding slop snaps instead of panicking.
    let snapped = paninski_all_distinct_probability(20, 1.0 + 1e-12, 5);
    assert_eq!(snapped, paninski_all_distinct_probability(20, 1.0, 5));
    let snapped = paninski_all_distinct_probability(20, -1e-13, 5);
    assert_eq!(snapped, paninski_all_distinct_probability(20, 0.0, 5));
}

/// The snap is slop-tolerance, not a clamp: genuinely out-of-range ε is
/// still a caller bug and still panics.
#[test]
fn paninski_rejects_real_out_of_range_epsilon() {
    let caught = std::panic::catch_unwind(|| paninski_all_distinct_probability(20, 1.5, 5));
    assert!(caught.is_err());
}
