//! Differential suite for the batched sampling kernels.
//!
//! The batched paths (`AliasTable::sample_batch` behind
//! `DiscreteDistribution::sample_batch`/`sample_batch_into`, and the
//! adaptive `CollisionScratch`) promise **bit-identity** with the
//! scalar paths they replace: same draws, same RNG end state, same
//! verdicts — for *any* `RngCore`, not just the one the benchmarks
//! happen to use. This suite drives that contract across the
//! pmf/hostile-weights strategy palette on both `StdRng` (the default
//! trial generator) and `BatchRng` (the `fast-sampling` generator).
//!
//! The `fast-sampling` feature swaps `dut_core::montecarlo::sampling_rng`
//! from `StdRng` to `BatchRng`, which *reorders the RNG stream* — so
//! verdict identity across that flag is checked against the exact
//! oracle, not draw-for-draw: both configurations must land the gap
//! tester's rejection-rate estimate inside the same Wilson interval
//! around the closed-form rate. CI runs this file in both lanes.

use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{sampling_rng, trial_rng, MonteCarlo};
use dut_core::scratch::TesterScratch;
use dut_distributions::batch::BatchRng;
use dut_distributions::collision::{has_collision, CollisionScratch};
use dut_distributions::DiscreteDistribution;
use dut_testkit::oracles;
use dut_testkit::strategies;
use proptest::collection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Asserts the batched draws, the appended draws, and the RNG end
/// state all match the scalar path exactly on `R`.
fn assert_bit_identical<R: RngCore + SeedableRng + Clone>(
    dist: &DiscreteDistribution,
    seed: u64,
    draws: usize,
) -> Result<(), TestCaseError> {
    let mut scalar_rng = R::seed_from_u64(seed);
    let expect: Vec<usize> = (0..draws).map(|_| dist.sample(&mut scalar_rng)).collect();

    let mut batched_rng = R::seed_from_u64(seed);
    let mut out = vec![0u32; draws];
    dist.sample_batch(&mut batched_rng, &mut out);
    let got: Vec<usize> = out.iter().map(|&x| x as usize).collect();
    prop_assert_eq!(&got, &expect, "sample_batch diverged from scalar sample");
    prop_assert_eq!(
        batched_rng.next_u64(),
        scalar_rng.next_u64(),
        "sample_batch left the RNG in a different state"
    );

    let mut into_rng = R::seed_from_u64(seed);
    let mut appended = vec![usize::MAX];
    dist.sample_batch_into(&mut into_rng, draws, &mut appended);
    prop_assert_eq!(&appended[0], &usize::MAX, "sample_batch_into must append");
    prop_assert_eq!(&appended[1..], &expect[..], "sample_batch_into diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Alias-table batched draws are bit-identical to scalar draws on
    /// arbitrary valid pmfs, for both trial generators.
    #[test]
    fn batched_draws_bit_identical_on_pmfs(
        p in strategies::pmf(1, 64),
        seed in any::<u64>(),
        draws in 0usize..200,
    ) {
        let dist = DiscreteDistribution::from_pmf(p).unwrap();
        assert_bit_identical::<StdRng>(&dist, seed, draws)?;
        assert_bit_identical::<BatchRng>(&dist, seed, draws)?;
    }

    /// Same contract on the hostile-weights palette: every weight
    /// vector the constructor accepts must sample identically batched
    /// and scalar (vectors it rejects are out of scope here — the
    /// constructor-rejection suite owns those).
    #[test]
    fn batched_draws_bit_identical_on_hostile_weights(
        w in strategies::hostile_weights(1, 32),
        seed in any::<u64>(),
    ) {
        if let Ok(dist) = DiscreteDistribution::from_weights(w) {
            assert_bit_identical::<StdRng>(&dist, seed, 100)?;
            assert_bit_identical::<BatchRng>(&dist, seed, 100)?;
        }
    }

    /// Uniform distributions take the multiply-shift fast path inside
    /// `sample_batch`; it must stay on the scalar stream too.
    #[test]
    fn batched_draws_bit_identical_on_uniform(
        n in 1usize..5000,
        seed in any::<u64>(),
        draws in 0usize..200,
    ) {
        let dist = DiscreteDistribution::uniform(n);
        assert_bit_identical::<StdRng>(&dist, seed, draws)?;
        assert_bit_identical::<BatchRng>(&dist, seed, draws)?;
    }

    /// The adaptive collision scratch (stamp mode, bitset mode, and the
    /// mid-call conversion between them) agrees with the sort-based
    /// detector on every sample set, including values that straddle the
    /// 2^19 stamp ceiling.
    #[test]
    fn collision_scratch_agrees_with_sort(
        sets in collection::vec(
            collection::vec(
                // Mix small values with values past the stamp ceiling so
                // runs exercise both table layouts and the conversion
                // (the shim has no prop_oneof; fold the coin into the range).
                (0usize..200).prop_map(|v| {
                    if v < 100 { v } else { (1usize << 19) - 50 + (v - 100) }
                }),
                0..20,
            ),
            1..8,
        ),
    ) {
        let mut scratch = CollisionScratch::new();
        for set in &sets {
            prop_assert_eq!(
                scratch.has_collision(set),
                has_collision(set),
                "scratch diverged on {:?}", set
            );
        }
    }

    /// End-to-end verdict identity: the gap tester over the batched
    /// draw path reaches the same decision as the same tester drawing
    /// scalar samples with the same RNG stream.
    #[test]
    fn gap_tester_verdicts_identical_batched_vs_scalar(
        p in strategies::pmf(2, 32),
        seed in any::<u64>(),
    ) {
        let dist = DiscreteDistribution::from_pmf(p).unwrap();
        // Tiny domains can't meet the tester's sample plan; skip those.
        let Ok(tester) = GapTester::new(dist.domain_size(), 0.2) else {
            return Ok(());
        };
        // Batched: run_with_scratch routes through sample_batch_into.
        let mut scratch = TesterScratch::new();
        let mut rng = trial_rng(seed);
        let batched = tester.run_with_scratch(&dist, &mut rng, &mut scratch);
        // Scalar: draw the samples one by one from a fresh stream.
        let mut rng = trial_rng(seed);
        let samples: Vec<usize> = (0..tester.samples()).map(|_| dist.sample(&mut rng)).collect();
        let scalar = Decision::from_accept(!has_collision(&samples));
        prop_assert_eq!(batched, scalar);
    }
}

/// Verdict contract across the `fast-sampling` flag: `sampling_rng`
/// yields a different stream under the flag, so the check is against
/// the exact oracle — the Monte-Carlo rejection-rate estimate must
/// bracket the closed-form rate in *both* configurations. CI runs the
/// suite with and without the feature; a kernel bug that skews the
/// sample distribution fails whichever lane it lives in.
#[test]
fn gap_tester_rejection_rate_matches_exact_oracle_on_sampling_rng() {
    let n = 256;
    let tester = GapTester::new(n, 0.1).unwrap();
    let uniform = DiscreteDistribution::uniform(n);
    let exact = oracles::rejection_probability(uniform.pmf_slice(), tester.samples());
    let trials = 20_000u32;
    let estimate = MonteCarlo::new(trials as usize, 99)
        .run_with_state(TesterScratch::new, |seed, scratch| {
            let mut rng = sampling_rng(seed);
            tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
        })
        .expect("trials > 0");
    // 5σ band around the exact binomial rate: loose enough to never
    // flake, tight enough to catch a biased kernel.
    let sigma = (exact * (1.0 - exact) / f64::from(trials)).sqrt();
    let err = (estimate.rate - exact).abs();
    assert!(
        err <= 5.0 * sigma,
        "estimate {} vs exact {exact} ({} sigma)",
        estimate.rate,
        err / sigma
    );
}
