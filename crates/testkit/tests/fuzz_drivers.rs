//! The full-scale seeded fuzz runs: ≥ 10⁴ codec corruption cases and a
//! randomized token-packaging sweep, all asserting the typed-error
//! contract (zero panics) and exact round-trips at or below the
//! certified correction radius.

use dut_testkit::fuzz;

#[test]
fn rs_codec_corruption_sweep() {
    let report = fuzz::fuzz_rs_codec(0x5EED_0001, 6_000);
    report.assert_contract();
    assert_eq!(report.cases, 6_000);
}

#[test]
fn justesen_codec_corruption_sweep() {
    let report = fuzz::fuzz_justesen_codec(0x5EED_0002, 4_000);
    report.assert_contract();
    assert_eq!(report.cases, 4_000);
}

#[test]
fn token_packaging_fault_sweep() {
    let report = fuzz::fuzz_token_packaging(0x5EED_0003, 250);
    report.assert_contract();
}
