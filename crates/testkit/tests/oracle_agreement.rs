//! Oracle-agreement suite: the testkit's independent reference oracles
//! against the production closed forms and Monte-Carlo estimators.
//!
//! Three independent implementations of the single-collision failure
//! law are triangulated: the exhaustive tuple enumeration (tiny cases),
//! the elementary-symmetric DP on explicit pmfs, and the log-space
//! binomial closed form in `dut_distributions::exact` (pair families
//! only). On top, `estimate_failure_rate`'s Wilson intervals are
//! checked against the exact rates they estimate.

use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{estimate_failure_rate, trial_rng};
use dut_distributions::collision::collision_probability;
use dut_distributions::distance::l1_to_uniform;
use dut_distributions::exact::paninski_all_distinct_probability;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_testkit::oracles;
use dut_testkit::strategies;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DP oracle == exhaustive enumeration on tiny random pmfs.
    #[test]
    fn dp_matches_exhaustive(p in strategies::pmf(2, 7), s in 0usize..6) {
        let dp = oracles::all_distinct_probability(&p, s);
        let brute = oracles::all_distinct_probability_exhaustive(&p, s);
        prop_assert!((dp - brute).abs() < 1e-10, "dp {dp} vs brute {brute}");
    }

    /// DP oracle on the explicit Paninski pmf == the production
    /// log-space closed form (which never sees the pmf).
    #[test]
    fn dp_matches_paninski_closed_form(
        half in 4usize..100,
        eps in 0.0f64..=1.0,
        s in 0usize..30,
    ) {
        let n = 2 * half;
        let closed = paninski_all_distinct_probability(n, eps, s);
        let d = paninski_far(n, eps).unwrap();
        let dp = oracles::all_distinct_probability(d.pmf_slice(), s);
        prop_assert!(
            (closed - dp).abs() < 1e-9,
            "n={n} eps={eps} s={s}: closed {closed} vs dp {dp}"
        );
    }

    /// Reference L1/χ agree with the production implementations on
    /// arbitrary valid pmfs.
    #[test]
    fn reference_distances_agree(p in strategies::pmf(1, 64)) {
        let d = DiscreteDistribution::from_pmf(p.clone()).unwrap();
        let l1 = oracles::l1_to_uniform(&p);
        prop_assert!((l1 - l1_to_uniform(&d)).abs() < 1e-12);
        let chi = oracles::collision_chi(&p);
        prop_assert!((chi - collision_probability(&d)).abs() < 1e-12);
    }

    /// Far-family instances drawn from the shared strategy really are
    /// far: their exact collision probability χ meets the paper's
    /// Lemma 3.2 bound χ ≥ (1 + ε²)/n within tolerance.
    #[test]
    fn far_family_chi_meets_lemma_3_2(fi in strategies::far_instance(64)) {
        let (family, n, eps) = fi;
        let d = family.instantiate(n, eps).unwrap();
        let chi = oracles::collision_chi(d.pmf_slice());
        let bound = (1.0 + eps * eps) / n as f64;
        prop_assert!(chi >= bound - 1e-12, "{}: chi {chi} < bound {bound}", family.name());
    }
}

/// The gap tester's Monte-Carlo failure rate, as reported by
/// `estimate_failure_rate`, sits on the exact oracle rate — on both the
/// uniform (completeness) and far (soundness) side. A 5σ + 1e-2 window
/// around a deterministic seeded estimate never flakes while still
/// catching systematic estimator or oracle bias.
#[test]
fn wilson_estimates_cover_exact_oracle_rates() {
    let n = 512;
    let eps = 0.8;
    let trials = 4_000;
    let tester = GapTester::new(n, 0.05).unwrap();
    let s = tester.samples();

    let uniform = DiscreteDistribution::uniform(n);
    let exact_reject = oracles::rejection_probability(uniform.pmf_slice(), s);
    let est = estimate_failure_rate(trials, 11, |seed| {
        tester.run(&uniform, &mut trial_rng(seed)) == Decision::Reject
    })
    .unwrap();
    let sigma = (exact_reject * (1.0 - exact_reject) / trials as f64).sqrt();
    assert!(
        (est.rate - exact_reject).abs() < 5.0 * sigma + 1e-2,
        "uniform: MC {} vs exact {exact_reject}",
        est.rate
    );

    let far = paninski_far(n, eps).unwrap();
    let exact_accept = oracles::all_distinct_probability(far.pmf_slice(), s);
    let est = estimate_failure_rate(trials, 13, |seed| {
        tester.run(&far, &mut trial_rng(seed)) == Decision::Accept
    })
    .unwrap();
    let sigma = (exact_accept * (1.0 - exact_accept) / trials as f64).sqrt();
    assert!(
        (est.rate - exact_accept).abs() < 5.0 * sigma + 1e-2,
        "far: MC {} vs exact {exact_accept}",
        est.rate
    );
}
