//! Serial ↔ parallel differential harness for the Monte-Carlo
//! executor.
//!
//! The executor's contract (`dut_core::executor`) is that failure
//! counts, Wilson intervals, and merged metrics sinks are **pure
//! functions of `(trials, base_seed)`** — thread count and chunk size
//! must never show in the output. These helpers run one trial closure
//! under a spread of configurations (serial, 2 threads, 8 threads with
//! a deliberately ragged chunk size) and assert every run is
//! bit-identical to the serial one. CI's testkit lane runs them over
//! the real testers (gap, amplified, zero-round, CONGEST) via the
//! `parallel_differential` integration suites in `dut-core` and
//! `dut-congest`.

use dut_core::montecarlo::ErrorEstimate;
use dut_core::{MonteCarlo, MonteCarloConfig};
use dut_obs::{Histogram, MemorySink, Sink};

/// Counters plus non-wall-clock histograms, in key order.
type SinkView<'a> = (Vec<(&'static str, u64)>, Vec<(&'static str, &'a Histogram)>);

/// The deterministic projection of a sink: every counter and every
/// histogram except wall-clock observations (`*.nanos`), which are
/// measurements of the run rather than outputs of it and legitimately
/// differ between configurations.
fn deterministic_view(sink: &MemorySink) -> SinkView<'_> {
    (
        sink.counters().collect(),
        sink.histograms()
            .filter(|(k, _)| !k.ends_with(".nanos"))
            .collect(),
    )
}

/// The configuration spread every differential run is checked under:
/// serial, dual-thread with the automatic chunk size, and 8 threads
/// with a ragged chunk size (37) that guarantees a short final chunk
/// and more chunks than threads.
pub fn config_spread() -> Vec<(&'static str, MonteCarloConfig)> {
    vec![
        ("serial", MonteCarloConfig::serial()),
        ("2 threads", MonteCarloConfig::with_threads(2)),
        (
            "8 threads, chunk 37",
            MonteCarloConfig::with_threads(8).chunk_size(37),
        ),
    ]
}

/// Runs `trial` (an observed trial closure: seed + per-worker state +
/// sink) under [`config_spread`], asserting the estimate **and** the
/// merged sink are bit-identical across all configurations (modulo
/// `*.nanos` wall-clock histograms, which time the run rather than
/// describe it). Returns the serial result for further assertions.
///
/// # Panics
///
/// Panics (via `assert_eq!`) on any divergence, or if the run itself
/// fails (`trials == 0`).
pub fn assert_thread_invariant_observed<S, I, F>(
    trials: usize,
    base_seed: u64,
    init: I,
    trial: F,
) -> (ErrorEstimate, MemorySink)
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
{
    let mut runs = config_spread()
        .into_iter()
        .map(|(label, config)| {
            let out = MonteCarlo::new(trials, base_seed)
                .config(config)
                .run_observed(&init, &trial)
                .expect("trials > 0");
            (label, out)
        })
        .collect::<Vec<_>>();
    let (_, reference) = runs.remove(0);
    for (label, out) in runs {
        assert_eq!(
            reference.0, out.0,
            "estimate diverged between serial and `{label}`"
        );
        assert_eq!(
            deterministic_view(&reference.1),
            deterministic_view(&out.1),
            "merged metrics diverged between serial and `{label}`"
        );
    }
    (reference.0, reference.1)
}

/// [`assert_thread_invariant_observed`] for unobserved stateful trials
/// (no sink); checks the estimate alone.
pub fn assert_thread_invariant<S, I, F>(
    trials: usize,
    base_seed: u64,
    init: I,
    trial: F,
) -> ErrorEstimate
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S) -> bool + Sync,
{
    let mut estimates = config_spread()
        .into_iter()
        .map(|(label, config)| {
            let est = MonteCarlo::new(trials, base_seed)
                .config(config)
                .run_with_state(&init, &trial)
                .expect("trials > 0");
            (label, est)
        })
        .collect::<Vec<_>>();
    let (_, reference) = estimates.remove(0);
    for (label, est) in estimates {
        assert_eq!(
            reference, est,
            "estimate diverged between serial and `{label}`"
        );
    }
    reference
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_closure_is_invariant_and_returns_serial_result() {
        let est = assert_thread_invariant(500, 99, || (), |seed, ()| seed.is_multiple_of(7));
        assert!(est.rate > 0.0 && est.rate < 1.0);

        let (est2, sink) = assert_thread_invariant_observed(
            500,
            99,
            || (),
            |seed, (), sink: &mut dyn Sink| {
                sink.add(dut_obs::keys::CORE_GAP_RUNS, 1);
                seed.is_multiple_of(7)
            },
        );
        assert_eq!(est, est2, "observation must not perturb the estimate");
        assert_eq!(sink.counter(dut_obs::keys::CORE_GAP_RUNS), 500);
    }
}
