//! Exact small-`n` reference oracles.
//!
//! These are *independent* implementations of quantities the production
//! crates compute with optimized closed forms, so the two sides can be
//! pitted against each other:
//!
//! * `dut_distributions::exact::paninski_all_distinct_probability`
//!   evaluates a binomial-sum closed form in log space, specialized to
//!   pair-perturbation families. [`all_distinct_probability`] here runs
//!   the elementary-symmetric DP on the *explicit pmf* — any pmf, no
//!   logs, no binomials — and
//!   [`all_distinct_probability_exhaustive`] literally enumerates
//!   ordered sample tuples for tiny instances.
//! * `dut_core::montecarlo::estimate_failure_rate` reports Wilson
//!   intervals around a Monte-Carlo rate; the oracles give the exact
//!   rate those intervals must cover.
//!
//! Agreement tests live in this crate's `tests/` tree and in the
//! downstream crates' test trees.

use dut_netsim::graph::Graph;

/// Elementary symmetric polynomial `e_s(p_0, …, p_{n−1})` by the
/// standard O(n·s) dynamic program (`e[j] += e[j−1]·p` per item).
///
/// # Panics
///
/// Panics if any mass is not finite.
pub fn elementary_symmetric(pmf: &[f64], s: usize) -> f64 {
    assert!(
        pmf.iter().all(|p| p.is_finite()),
        "oracle needs finite masses"
    );
    if s > pmf.len() {
        return 0.0;
    }
    let mut e = vec![0.0f64; s + 1];
    e[0] = 1.0;
    for &p in pmf {
        for j in (1..=s).rev() {
            e[j] += e[j - 1] * p;
        }
    }
    e[s]
}

/// Exact probability that `s` iid samples from the distribution with
/// masses `pmf` are **all distinct**: `s! · e_s(pmf)` (each unordered
/// distinct support set is realized by `s!` orderings).
///
/// This is the failure law of the single-collision gap tester: on the
/// uniform distribution the tester errs (rejects) with probability
/// `1 − all_distinct`, and on an ε-far distribution it errs (accepts)
/// with probability `all_distinct`.
///
/// # Panics
///
/// Panics if a mass is not finite, or if `s > 170` (where `s!`
/// overflows `f64`; the oracle targets small-`n` cross-checks).
pub fn all_distinct_probability(pmf: &[f64], s: usize) -> f64 {
    assert!(s <= 170, "s! overflows f64 beyond 170; use the closed form");
    let mut factorial = 1.0f64;
    for j in 2..=s {
        factorial *= j as f64;
    }
    (factorial * elementary_symmetric(pmf, s)).clamp(0.0, 1.0)
}

/// Exact all-distinct probability by brute-force enumeration of every
/// ordered `s`-tuple of **distinct** indices (summing `Π pmf[iⱼ]`).
/// Exponential — the guard keeps it to genuinely tiny instances, where
/// it serves as ground truth for [`all_distinct_probability`] itself.
///
/// # Panics
///
/// Panics if `n^s` exceeds `10^7` tuples.
pub fn all_distinct_probability_exhaustive(pmf: &[f64], s: usize) -> f64 {
    let n = pmf.len();
    let budget = (n as f64).powi(s as i32);
    assert!(
        budget <= 1e7,
        "exhaustive oracle limited to n^s <= 1e7, got {budget}"
    );
    if s > n {
        return 0.0;
    }
    fn recurse(pmf: &[f64], used: &mut [bool], remaining: usize, acc: f64) -> f64 {
        if remaining == 0 {
            return acc;
        }
        let mut total = 0.0;
        for i in 0..pmf.len() {
            if !used[i] {
                used[i] = true;
                total += recurse(pmf, used, remaining - 1, acc * pmf[i]);
                used[i] = false;
            }
        }
        total
    }
    let mut used = vec![false; n];
    recurse(pmf, &mut used, s, 1.0).clamp(0.0, 1.0)
}

/// Exact rejection probability of the single-collision gap tester with
/// `s` samples on `pmf`: `1 − all_distinct_probability`.
pub fn rejection_probability(pmf: &[f64], s: usize) -> f64 {
    1.0 - all_distinct_probability(pmf, s)
}

/// Reference L1 distance to the uniform distribution on the pmf's
/// domain: `Σ |pmf(x) − 1/n|`.
pub fn l1_to_uniform(pmf: &[f64]) -> f64 {
    let u = 1.0 / pmf.len() as f64;
    pmf.iter().map(|&p| (p - u).abs()).sum()
}

/// Exact graph conductance by subset enumeration:
/// `Φ(G) = min over ∅ ⊂ S ⊂ V of cut(S) / min(vol(S), vol(V∖S))`
/// with `vol(S) = Σ_{v∈S} deg(v)` — the quantity the distributed
/// conductance tester (`dut_congest::conductance`) decides about.
/// Ground truth for the generator strategies: Margulis expanders must
/// score high, bridged cliques near zero.
///
/// Complement symmetry lets node 0 be pinned outside `S`, so the scan
/// is over `2^(k−1) − 1` proper subsets.
///
/// # Panics
///
/// Panics if the graph has fewer than 2 nodes, more than 20 nodes
/// (the enumeration is exponential — this oracle targets small-`k`
/// cross-checks), or no edges (conductance is undefined at volume 0).
pub fn exact_conductance(g: &Graph) -> f64 {
    let k = g.node_count();
    assert!(k >= 2, "conductance needs at least 2 nodes (got {k})");
    assert!(
        k <= 20,
        "exact_conductance is exponential; k <= 20 (got {k})"
    );
    assert!(g.edge_count() > 0, "conductance is undefined without edges");
    let degs: Vec<u64> = (0..k).map(|v| g.degree(v) as u64).collect();
    let total_vol: u64 = degs.iter().sum();
    let mut best = f64::INFINITY;
    // Node 0 stays outside S; mask bit i selects node i+1.
    for mask in 1u32..(1u32 << (k - 1)) {
        let in_s = |v: usize| v > 0 && mask >> (v - 1) & 1 == 1;
        let mut cut = 0u64;
        let mut vol = 0u64;
        for (v, &deg) in degs.iter().enumerate() {
            if !in_s(v) {
                continue;
            }
            vol += deg;
            cut += g.neighbors(v).iter().filter(|&&u| !in_s(u)).count() as u64;
        }
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            // S (or its complement) is all isolated vertices; the cut
            // is 0 too, and the ratio is taken as no constraint.
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if phi < best {
            best = phi;
        }
    }
    best
}

/// Reference collision probability `χ(μ) = Σ μ(x)²` (the quantity of
/// the paper's Lemma 3.2: χ ≥ (1 + ε²)/n for ε-far μ).
pub fn collision_chi(pmf: &[f64]) -> f64 {
    pmf.iter().map(|&p| p * p).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_netsim::graph::ImplicitTopology;
    use dut_netsim::topology::{bridged_cliques, complete, ring, star, MargulisExpander};

    #[test]
    fn conductance_of_complete_graph() {
        // K4: the minimizing cut is 1-vs-3 (cut 3, vol 3) or 2-vs-2
        // (cut 4, vol 6) -> Φ = min(1, 2/3) = 2/3.
        let phi = exact_conductance(&complete(4));
        assert!((phi - 2.0 / 3.0).abs() < 1e-12, "phi {phi}");
    }

    #[test]
    fn conductance_of_ring_halves() {
        // C8: the best cut is 4 contiguous nodes — cut 2, vol 8.
        let phi = exact_conductance(&ring(8));
        assert!((phi - 0.25).abs() < 1e-12, "phi {phi}");
    }

    #[test]
    fn conductance_of_star_leaf() {
        // A single leaf: cut 1, vol 1 -> Φ = 1.
        let phi = exact_conductance(&star(5));
        assert!((phi - 1.0).abs() < 1e-12, "phi {phi}");
    }

    #[test]
    fn conductance_separates_expander_from_bridged_cliques() {
        // The generator pair the conductance tester's suites lean on:
        // ground truth that the gap is real on oracle-sized instances.
        let exp = MargulisExpander::new(4).materialize(); // k = 16
        let far = bridged_cliques(16);
        let phi_exp = exact_conductance(&exp);
        let phi_far = exact_conductance(&far);
        // Bridged K8s: cut 1, vol(side) = 8·7 + 1 = 57 -> Φ = 1/57.
        assert!((phi_far - 1.0 / 57.0).abs() < 1e-12, "phi_far {phi_far}");
        assert!(phi_exp > 0.2, "phi_exp {phi_exp}");
        assert!(phi_exp > 10.0 * phi_far);
    }

    #[test]
    #[should_panic(expected = "k <= 20")]
    fn conductance_oracle_rejects_large_graphs() {
        let _ = exact_conductance(&complete(21));
    }

    #[test]
    fn elementary_symmetric_small_cases() {
        // e_0 = 1, e_1 = sum, e_2(a,b,c) = ab + ac + bc.
        let p = [0.2, 0.3, 0.5];
        assert_eq!(elementary_symmetric(&p, 0), 1.0);
        assert!((elementary_symmetric(&p, 1) - 1.0).abs() < 1e-12);
        let e2 = 0.2 * 0.3 + 0.2 * 0.5 + 0.3 * 0.5;
        assert!((elementary_symmetric(&p, 2) - e2).abs() < 1e-12);
        assert!((elementary_symmetric(&p, 3) - 0.2 * 0.3 * 0.5).abs() < 1e-12);
        assert_eq!(elementary_symmetric(&p, 4), 0.0);
    }

    #[test]
    fn dp_matches_exhaustive_enumeration() {
        let pmf = [0.1, 0.15, 0.2, 0.25, 0.3];
        for s in 0..=5 {
            let dp = all_distinct_probability(&pmf, s);
            let brute = all_distinct_probability_exhaustive(&pmf, s);
            assert!((dp - brute).abs() < 1e-12, "s={s}: {dp} vs {brute}");
        }
    }

    #[test]
    fn uniform_two_samples_collide_with_one_over_n() {
        let n = 8;
        let pmf = vec![1.0 / n as f64; n];
        let reject = rejection_probability(&pmf, 2);
        assert!((reject - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn oversampling_always_collides() {
        let pmf = [0.25; 4];
        assert_eq!(all_distinct_probability(&pmf, 5), 0.0);
        assert_eq!(all_distinct_probability_exhaustive(&pmf, 5), 0.0);
    }

    #[test]
    fn reference_distances() {
        let pmf = [0.5, 0.5, 0.0, 0.0];
        assert!((l1_to_uniform(&pmf) - 1.0).abs() < 1e-12);
        assert!((collision_chi(&pmf) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_mass_is_rejected() {
        let _ = elementary_symmetric(&[0.5, f64::NAN], 1);
    }
}
