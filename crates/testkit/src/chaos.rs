//! Adversarial fault search: measuring *where* the robust pipeline
//! breaks, not just whether a random plan broke it.
//!
//! The [`fuzz`](crate::fuzz) drivers answer "does any random fault plan
//! panic or violate an invariant?". This module answers the sharper
//! question the robustness claims hinge on: **at what fault intensity
//! does [`solve_token_packaging_robust`] stop succeeding, and what is
//! the smallest crash schedule that defeats it?** A
//! [`FaultBoundaryReport`] turns `PackagingError::FaultOverwhelmed`
//! from an occasional test outcome into a measured frontier per
//! (topology, codec, τ, retry budget):
//!
//! * **Rate frontiers** — a bracketing binary search over drop (and
//!   separately flip) probability. Each probed rate runs a fixed jury
//!   of seeded trials; a rate "fails" when a majority of the jury does.
//!   Per-trial plan seeds do not depend on the rate, so the same coin
//!   sequences are reused up the rate axis and the failure fraction is
//!   effectively monotone — the search converges to the smallest rate
//!   (at the configured resolution) where faults overwhelm the retry
//!   budget.
//! * **Minimal crash witness** — seeded random crash-only schedules
//!   escalate until one defeats the pipeline, then the schedule is
//!   delta-debugged: events are deleted to a 1-minimal set (removing
//!   any single event makes the run pass), surviving events have their
//!   rounds shrunk toward 0, and finally each crash is offered the
//!   *earliest rejoin that still fails* — so the witness also measures
//!   the minimal outage length the recovery machinery cannot absorb.
//!
//! Every execution the search performs is derived from one `u64` seed,
//! and multi-threaded probing (see [`ChaosConfig::threads`]) partitions
//! trials by index and merges results in index order — the report is
//! **bit-identical at 1, 2, and 8 threads**, which the test tree pins.

use dut_congest::{
    robust_bandwidth_model, solve_token_packaging_robust, PackagingError, RobustStage,
};
use dut_netsim::engine::BandwidthModel;
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::Graph;
use dut_netsim::topology::Topology;
use dut_obs::{keys, NoopSink, Sink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of one fault-boundary search.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Topology under attack.
    pub topology: Topology,
    /// Requested node count (some topologies round it; the report
    /// carries the realized count).
    pub k: usize,
    /// Tokens held by every node.
    pub tokens_per_node: usize,
    /// Package size τ.
    pub tau: usize,
    /// Per-message retry budget handed to the robust pipeline.
    pub max_retries: usize,
    /// Master seed: fixes the instance (ids, token values, random
    /// topologies) and every fault plan the search executes.
    pub seed: u64,
    /// Jury size per probed rate; a rate fails on a strict majority.
    pub trials_per_rate: usize,
    /// Bisection steps per rate axis (resolution `max_rate / 2^steps`).
    pub refine_steps: usize,
    /// Upper end of the drop-rate bracket.
    pub max_drop: f64,
    /// Upper end of the flip-rate bracket.
    pub max_flip: f64,
    /// Random crash schedules tried before giving up on a witness.
    pub witness_attempts: usize,
    /// Crash events per attempted schedule escalate over `1..=this`.
    pub max_crashes: usize,
    /// Crash rounds are drawn from `0..this`.
    pub crash_round_window: usize,
    /// Worker threads for the embarrassingly parallel stages (rate
    /// juries, witness attempts). Purely a throughput knob: the report
    /// is bit-identical for any value.
    pub threads: usize,
}

impl ChaosConfig {
    /// A small search suitable for test trees and the CI chaos lane:
    /// jury of 5, 6 bisection steps, 12 witness attempts.
    pub fn quick(topology: Topology, k: usize, tau: usize, seed: u64) -> Self {
        ChaosConfig {
            topology,
            k,
            tokens_per_node: 1,
            tau,
            max_retries: 1,
            seed,
            trials_per_rate: 5,
            refine_steps: 6,
            max_drop: 0.9,
            max_flip: 0.2,
            witness_attempts: 12,
            max_crashes: 3,
            crash_round_window: 12,
            threads: 1,
        }
    }

    /// Same search on `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// How one probed execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseFailure {
    /// The retry budget was overwhelmed at a measured pipeline stage
    /// (the enriched [`PackagingError::FaultOverwhelmed`] context).
    Overwhelmed {
        /// Stage whose conservation check failed.
        stage: RobustStage,
        /// Cumulative pipeline round at which it failed.
        round: usize,
        /// Deliveries lost for good.
        failures: u64,
    },
    /// The run died below the packaging layer (unreached BFS node,
    /// round-limit exhaustion, …).
    Engine(String),
    /// Any other typed packaging error.
    Other(String),
    /// The pipeline panicked — always a bug, surfaced loudly by
    /// [`FaultBoundaryReport::assert_contract`].
    Panic,
}

/// A 1-minimal crash schedule that defeats the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimalWitness {
    /// Crash events `(node, round)`, sorted.
    pub crashes: Vec<(usize, usize)>,
    /// Rejoin events `(node, round)`: for each crash, the earliest
    /// rejoin that still fails, when one exists (a crash with no rejoin
    /// here must stay permanent to defeat the pipeline).
    pub rejoins: Vec<(usize, usize)>,
    /// How the minimal plan fails.
    pub failure: CaseFailure,
    /// Random schedules evaluated before the first witness.
    pub attempts: usize,
    /// Candidate executions spent shrinking.
    pub shrink_steps: usize,
}

impl MinimalWitness {
    /// The witness as an executable crash-only [`FaultPlan`].
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::seeded(0);
        for &(v, r) in &self.crashes {
            plan = plan.with_crash(v, r);
        }
        for &(v, r) in &self.rejoins {
            plan = plan.with_rejoin(v, r);
        }
        plan
    }
}

/// The measured failure frontier of a (topology, codec, τ, retries)
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultBoundaryReport {
    /// Topology name.
    pub topology: &'static str,
    /// Wire codec of the pipeline under attack.
    pub codec: &'static str,
    /// Realized node count.
    pub k: usize,
    /// Package size τ.
    pub tau: usize,
    /// Retry budget the frontier is measured against.
    pub max_retries: usize,
    /// Smallest probed drop rate at which a trial majority fails, or
    /// `None` if even `max_drop` passes.
    pub drop_frontier: Option<f64>,
    /// Representative failure at the drop frontier.
    pub drop_failure: Option<CaseFailure>,
    /// Smallest probed flip rate at which a trial majority fails.
    pub flip_frontier: Option<f64>,
    /// Representative failure at the flip frontier.
    pub flip_failure: Option<CaseFailure>,
    /// Delta-debugged minimal crash schedule, if any attempt failed.
    pub witness: Option<MinimalWitness>,
    /// Total protocol executions the search spent.
    pub probes: usize,
    /// Executions that failed.
    pub failures: usize,
}

impl FaultBoundaryReport {
    /// Panics unless the search measured something and saw no panics.
    ///
    /// A boundary search that brackets no frontier *and* finds no
    /// witness measured nothing — either the brackets are too narrow or
    /// the configuration is unbreakable, and both deserve a loud
    /// failure in a suite whose point is the frontier.
    pub fn assert_contract(&self) {
        assert!(self.probes > 0, "search ran nothing: {self:?}");
        let panicked = |f: &Option<CaseFailure>| matches!(f, Some(CaseFailure::Panic));
        assert!(
            !panicked(&self.drop_failure)
                && !panicked(&self.flip_failure)
                && !self
                    .witness
                    .as_ref()
                    .is_some_and(|w| w.failure == CaseFailure::Panic),
            "pipeline panicked under faults: {self:?}"
        );
        assert!(
            self.drop_frontier.is_some() || self.flip_frontier.is_some() || self.witness.is_some(),
            "search measured no frontier and no witness: {self:?}"
        );
    }
}

/// The fixed instance every probe of one search runs against.
struct CaseEnv {
    g: Graph,
    tokens: Vec<Vec<u64>>,
    ids: Vec<u64>,
    tau: usize,
    max_retries: usize,
    model: BandwidthModel,
}

/// splitmix64: decorrelates derived seeds from the master seed.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CaseEnv {
    fn new(cfg: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(mix(cfg.seed, 0x1057_A9CE));
        let g = cfg.topology.instantiate(cfg.k, &mut rng);
        let k = g.node_count();
        let tokens: Vec<Vec<u64>> = (0..k)
            .map(|_| {
                (0..cfg.tokens_per_node)
                    .map(|_| rng.gen_range(0..997u64))
                    .collect()
            })
            .collect();
        // Distinct ids with a unique maximum: spacing beats the offset.
        let ids: Vec<u64> = (0..k)
            .map(|v| u64::from(rng.gen::<u32>()) * 1009 + v as u64)
            .collect();
        CaseEnv {
            g,
            tokens,
            ids,
            tau: cfg.tau,
            max_retries: cfg.max_retries,
            model: robust_bandwidth_model(),
        }
    }

    /// Runs the pipeline once under `plan`; `None` means it succeeded.
    fn run(&self, plan: &FaultPlan) -> Option<CaseFailure> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            solve_token_packaging_robust(
                &self.g,
                &self.tokens,
                &self.ids,
                self.tau,
                self.model,
                plan,
                self.max_retries,
                &mut NoopSink,
            )
        }));
        match outcome {
            Err(_) => Some(CaseFailure::Panic),
            Ok(Ok(_)) => None,
            Ok(Err(PackagingError::FaultOverwhelmed {
                stage,
                round,
                failures,
                ..
            })) => Some(CaseFailure::Overwhelmed {
                stage,
                round,
                failures,
            }),
            Ok(Err(PackagingError::Engine(e))) => Some(CaseFailure::Engine(e.to_string())),
            Ok(Err(e)) => Some(CaseFailure::Other(e.to_string())),
        }
    }
}

/// Runs `f(0..n)` split across `threads` contiguous index chunks and
/// returns results in index order — bit-identical for any thread count
/// because `f` is pure per index and the merge is positional.
fn run_batch<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo, (lo..hi).map(f).collect::<Vec<R>>()))
            })
            .collect();
        for handle in handles {
            let (lo, vals) = handle.join().expect("chaos worker panicked");
            for (i, v) in vals.into_iter().enumerate() {
                out[lo + i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index computed"))
        .collect()
}

#[derive(Clone, Copy)]
enum RateAxis {
    Drop,
    Flip,
}

/// One jury verdict at a fixed rate: failure count plus the failure of
/// the lowest-index failing trial (the deterministic representative).
fn probe_rate(
    env: &CaseEnv,
    axis: RateAxis,
    rate: f64,
    cfg: &ChaosConfig,
    axis_seed: u64,
) -> (usize, Option<CaseFailure>) {
    let results = run_batch(cfg.trials_per_rate, cfg.threads, |i| {
        // Trial seeds are rate-independent: the same fault coins are
        // reused at every probed rate, keeping failure monotone along
        // the axis.
        let seed = mix(axis_seed, i as u64);
        let plan = match axis {
            RateAxis::Drop => FaultPlan::seeded(seed).with_drops(rate),
            RateAxis::Flip => FaultPlan::seeded(seed).with_flips(rate),
        };
        env.run(&plan)
    });
    let failures = results.iter().filter(|r| r.is_some()).count();
    let sample = results.into_iter().flatten().next();
    (failures, sample)
}

/// Bisects one rate axis to the smallest majority-failing rate.
fn rate_frontier(
    env: &CaseEnv,
    axis: RateAxis,
    max_rate: f64,
    cfg: &ChaosConfig,
    axis_seed: u64,
    probes: &mut usize,
    failures: &mut usize,
) -> (Option<f64>, Option<CaseFailure>) {
    let majority = |fails: usize| 2 * fails > cfg.trials_per_rate;
    let (top_fails, top_sample) = probe_rate(env, axis, max_rate, cfg, axis_seed);
    *probes += cfg.trials_per_rate;
    *failures += top_fails;
    if !majority(top_fails) {
        // The bracket never fails: no frontier below max_rate.
        return (None, None);
    }
    let (mut lo, mut hi) = (0.0f64, max_rate);
    let mut at_hi = top_sample;
    for _ in 0..cfg.refine_steps {
        let mid = 0.5 * (lo + hi);
        let (fails, sample) = probe_rate(env, axis, mid, cfg, axis_seed);
        *probes += cfg.trials_per_rate;
        *failures += fails;
        if majority(fails) {
            hi = mid;
            at_hi = sample;
        } else {
            lo = mid;
        }
    }
    (Some(hi), at_hi)
}

/// The crash-only plan for a schedule (crash plans draw no fault coins,
/// so the seed is immaterial — fixed at 0 for canonical equality).
fn crash_plan(crashes: &[(usize, usize)], rejoins: &[(usize, usize)]) -> FaultPlan {
    let mut plan = FaultPlan::seeded(0);
    for &(v, r) in crashes {
        plan = plan.with_crash(v, r);
    }
    for &(v, r) in rejoins {
        plan = plan.with_rejoin(v, r);
    }
    plan
}

/// Seeded random crash schedule for witness attempt `i`, escalating
/// from one event.
fn gen_schedule(cfg: &ChaosConfig, k: usize, i: usize) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed, 0xC8A5 ^ i as u64));
    let n = 1 + i % cfg.max_crashes.max(1);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..k),
                rng.gen_range(0..cfg.crash_round_window.max(1)),
            )
        })
        .collect()
}

/// Finds a failing crash schedule and delta-debugs it to 1-minimality.
fn find_witness(
    env: &CaseEnv,
    cfg: &ChaosConfig,
    probes: &mut usize,
    failures: &mut usize,
) -> Option<MinimalWitness> {
    let k = env.g.node_count();
    let schedules: Vec<Vec<(usize, usize)>> = (0..cfg.witness_attempts)
        .map(|i| gen_schedule(cfg, k, i))
        .collect();
    let results = run_batch(cfg.witness_attempts, cfg.threads, |i| {
        env.run(&crash_plan(&schedules[i], &[]))
    });
    *probes += cfg.witness_attempts;
    *failures += results.iter().filter(|r| r.is_some()).count();
    let (first, mut failure) = results
        .into_iter()
        .enumerate()
        .find_map(|(i, r)| r.map(|f| (i, f)))?;
    let mut crashes = schedules[first].clone();
    let mut shrink_steps = 0usize;

    // Pass A — event deletion to a 1-minimal set: keep retrying
    // removals until no single deletion still fails. Removing *all*
    // events is the fault-free plan, which succeeds, so the loop
    // cannot shrink past one event.
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < crashes.len() {
            let mut cand = crashes.clone();
            cand.remove(i);
            shrink_steps += 1;
            match env.run(&crash_plan(&cand, &[])) {
                Some(f) => {
                    crashes = cand;
                    failure = f;
                    removed = true;
                }
                None => i += 1,
            }
        }
        if !removed {
            break;
        }
    }

    // Pass B — shrink each surviving event's round toward 0 (an
    // earlier crash is the simpler witness): try 0, then halfway.
    for i in 0..crashes.len() {
        let round = crashes[i].1;
        for cand_round in [0, round / 2] {
            if cand_round >= round {
                continue;
            }
            let mut cand = crashes.clone();
            cand[i].1 = cand_round;
            shrink_steps += 1;
            if let Some(f) = env.run(&crash_plan(&cand, &[])) {
                crashes = cand;
                failure = f;
                break;
            }
        }
    }

    // Pass C — rejoin tightening: for each crash, the earliest rejoin
    // that still fails. A crash that tolerates no rejoin at all must
    // stay permanent to defeat the pipeline — itself a measurement of
    // the recovery machinery.
    let mut rejoins: Vec<(usize, usize)> = Vec::new();
    for &(v, r) in &crashes {
        for offset in [2usize, 4, 8] {
            let mut cand = rejoins.clone();
            cand.push((v, r + offset));
            shrink_steps += 1;
            if let Some(f) = env.run(&crash_plan(&crashes, &cand)) {
                rejoins = cand;
                failure = f;
                break;
            }
        }
    }

    *probes += shrink_steps;
    crashes.sort_unstable();
    rejoins.sort_unstable();
    Some(MinimalWitness {
        crashes,
        rejoins,
        failure,
        attempts: first + 1,
        shrink_steps,
    })
}

/// Runs the full boundary search for `cfg`, recording
/// `chaos.boundary.*` totals into `sink`.
pub fn find_fault_boundary(cfg: &ChaosConfig, sink: &mut dyn Sink) -> FaultBoundaryReport {
    let env = CaseEnv::new(cfg);
    let mut probes = 0usize;
    let mut failures = 0usize;
    let (drop_frontier, drop_failure) = rate_frontier(
        &env,
        RateAxis::Drop,
        cfg.max_drop,
        cfg,
        mix(cfg.seed, 0xD20B),
        &mut probes,
        &mut failures,
    );
    let (flip_frontier, flip_failure) = rate_frontier(
        &env,
        RateAxis::Flip,
        cfg.max_flip,
        cfg,
        mix(cfg.seed, 0xF11B),
        &mut probes,
        &mut failures,
    );
    let witness = find_witness(&env, cfg, &mut probes, &mut failures);

    sink.add(keys::CHAOS_BOUNDARY_PROBES, probes as u64);
    sink.add(keys::CHAOS_BOUNDARY_FAILURES, failures as u64);
    if let Some(f) = drop_frontier {
        sink.add(keys::CHAOS_BOUNDARY_DROP_PPM, (f * 1e6) as u64);
    }
    if let Some(f) = flip_frontier {
        sink.add(keys::CHAOS_BOUNDARY_FLIP_PPM, (f * 1e6) as u64);
    }
    if let Some(w) = &witness {
        sink.add(
            keys::CHAOS_BOUNDARY_WITNESS_EVENTS,
            (w.crashes.len() + w.rejoins.len()) as u64,
        );
        sink.add(keys::CHAOS_BOUNDARY_SHRINK_STEPS, w.shrink_steps as u64);
    }

    FaultBoundaryReport {
        topology: cfg.topology.name(),
        codec: "justesen-1/3",
        k: env.g.node_count(),
        tau: cfg.tau,
        max_retries: cfg.max_retries,
        drop_frontier,
        drop_failure,
        flip_frontier,
        flip_failure,
        witness,
        probes,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_obs::MemorySink;

    fn line8() -> ChaosConfig {
        ChaosConfig::quick(Topology::Line, 8, 3, 0xC4A0_5001)
    }

    #[test]
    fn boundary_search_measures_a_frontier() {
        let report = find_fault_boundary(&line8(), &mut NoopSink);
        report.assert_contract();
        let f = report
            .drop_frontier
            .expect("a 1-retry line must have a drop frontier below 0.9");
        assert!(f > 0.0 && f <= 0.9, "frontier out of bracket: {f}");
        assert!(report.witness.is_some(), "crash witness must exist");
    }

    #[test]
    fn report_is_thread_invariant() {
        let base = find_fault_boundary(&line8(), &mut NoopSink);
        for threads in [2usize, 8] {
            let other = find_fault_boundary(&line8().with_threads(threads), &mut NoopSink);
            assert_eq!(base, other, "report drifted at {threads} threads");
        }
    }

    #[test]
    fn search_is_deterministic() {
        assert_eq!(
            find_fault_boundary(&line8(), &mut NoopSink),
            find_fault_boundary(&line8(), &mut NoopSink)
        );
    }

    #[test]
    fn minimal_witness_is_one_minimal() {
        let report = find_fault_boundary(&line8(), &mut NoopSink);
        let witness = report.witness.expect("witness exists at this seed");
        let env = CaseEnv::new(&line8());
        assert!(
            env.run(&witness.plan()).is_some(),
            "minimal witness must still fail"
        );
        for i in 0..witness.crashes.len() {
            let mut cand = witness.crashes.clone();
            cand.remove(i);
            // Rejoins whose crash was just removed are dropped too —
            // `with_rejoin` rejects a rejoin with no earlier crash.
            let rejoins: Vec<_> = witness
                .rejoins
                .iter()
                .copied()
                .filter(|&(v, j)| cand.iter().any(|&(u, c)| u == v && c < j))
                .collect();
            assert!(
                env.run(&crash_plan(&cand, &rejoins)).is_none(),
                "witness not 1-minimal: removing crash {i} still fails"
            );
        }
    }

    #[test]
    fn boundary_keys_are_recorded() {
        let mut sink = MemorySink::new();
        let report = find_fault_boundary(&line8(), &mut sink);
        assert_eq!(
            sink.counter(keys::CHAOS_BOUNDARY_PROBES),
            report.probes as u64
        );
        assert_eq!(
            sink.counter(keys::CHAOS_BOUNDARY_FAILURES),
            report.failures as u64
        );
        assert!(sink.counter(keys::CHAOS_BOUNDARY_DROP_PPM) > 0);
        assert!(sink.counter(keys::CHAOS_BOUNDARY_WITNESS_EVENTS) > 0);
    }

    #[test]
    fn grid_frontier_beats_line_frontier() {
        // A grid offers redundant flood paths the line lacks; with the
        // same retry budget its drop frontier must sit at least as
        // high. This is the "frontier as a measurement" claim: the
        // number moves the way the topology says it should.
        let line = find_fault_boundary(&line8(), &mut NoopSink);
        let grid = find_fault_boundary(
            &ChaosConfig::quick(Topology::Grid, 9, 3, 0xC4A0_5001),
            &mut NoopSink,
        );
        let (lf, gf) = (
            line.drop_frontier.expect("line frontier"),
            grid.drop_frontier.expect("grid frontier"),
        );
        assert!(
            gf >= lf,
            "grid frontier {gf} below line frontier {lf} at equal retries"
        );
    }

    #[test]
    fn pinned_minimal_witness_is_stable() {
        // Fixed-seed regression: the CI chaos lane reruns this exact
        // search; the minimal witness (not just its existence) is part
        // of the contract. If a legitimate pipeline change moves the
        // boundary, re-pin deliberately.
        let report = find_fault_boundary(&line8(), &mut NoopSink);
        let witness = report.witness.expect("witness exists at this seed");
        // The search distills the schedule to a single early crash of
        // node 5 with the *earliest rejoin that still fails* at +2 —
        // measuring that even a two-round outage defeats the forwarding
        // phase, which (unlike residue) has no ARQ layer to retry
        // through it.
        assert_eq!(witness.crashes, vec![(5, 0)]);
        assert_eq!(witness.rejoins, vec![(5, 2)]);
        match &witness.failure {
            CaseFailure::Overwhelmed {
                stage, failures, ..
            } => {
                assert_eq!(*stage, RobustStage::Forwarding);
                assert_eq!(*failures, 1, "exactly one token lost in flight");
            }
            other => panic!("unexpected witness failure: {other:?}"),
        }
        // The frontier itself is part of the regression pin.
        assert_eq!(report.drop_frontier, Some(0.028125));
        assert_eq!(report.flip_frontier, Some(0.06875));
    }
}
