//! Proptest strategies shared across the workspace's test trees.
//!
//! All strategies are built on the vendored offline proptest shim
//! (deterministic per test name and case index, no shrinking), so any
//! failing case is reproducible from its printed case number.

use dut_distributions::families::FarFamily;
use dut_distributions::DiscreteDistribution;
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::{Graph, ImplicitTopology};
use dut_netsim::topology::{bridged_cliques, MargulisExpander, Topology};
use proptest::collection;
use proptest::{any, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A valid probability mass function with between `min_n` and `max_n`
/// entries: strictly positive weights, normalized to sum 1 (within the
/// constructors' `1e-9` tolerance).
pub fn pmf(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    assert!(min_n >= 1 && min_n <= max_n, "need 1 <= min_n <= max_n");
    (min_n..=max_n)
        .prop_flat_map(|n| collection::vec(0.01f64..1.0, n))
        .prop_map(|weights| {
            let sum: f64 = weights.iter().sum();
            weights.iter().map(|w| w / sum).collect()
        })
}

/// One *hostile* weight entry: most draws are ordinary positive values,
/// but NaN, ±infinity, negatives, zero, denormals, and `f64::MAX`
/// (whose sums overflow to `+inf`) all appear with fixed probability.
/// Distribution constructors must reject every invalid combination with
/// a typed error — never a panic, and never a silently degenerate
/// sampler.
pub fn hostile_weight() -> impl Strategy<Value = f64> {
    (0usize..10, 0.0f64..1.0).prop_map(|(kind, x)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -(x + 0.001),
        4 => 0.0,
        // Denormal territory: scaling the minimum positive normal down.
        5 => f64::MIN_POSITIVE * x,
        // Two of these sum to +inf even though each entry is finite.
        6 => f64::MAX,
        _ => x + 0.001,
    })
}

/// A weight vector of `min_n..max_n` [`hostile_weight`] entries.
pub fn hostile_weights(min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    assert!(min_n >= 1 && min_n < max_n, "need 1 <= min_n < max_n");
    (min_n..max_n).prop_flat_map(|n| collection::vec(hostile_weight(), n))
}

/// A far-family selector: `(family, n, epsilon)` with even `n` and
/// `epsilon` in `[0.1, 1.0]`, filtered to combinations the family
/// constructor accepts.
pub fn far_instance(max_half_n: usize) -> impl Strategy<Value = (FarFamily, usize, f64)> {
    assert!(max_half_n >= 4, "need max_half_n >= 4");
    (
        0usize..FarFamily::ALL.len(),
        4usize..=max_half_n,
        0.1f64..=1.0,
    )
        .prop_map(|(f, half, eps)| (FarFamily::ALL[f], 2 * half, eps))
        .prop_filter(
            "family constructor rejects the combination",
            |(f, n, eps)| f.instantiate(*n, *eps).is_ok(),
        )
}

/// A far-from-uniform distribution drawn from the [`FarFamily`]
/// catalogue (see [`far_instance`] for the parameter ranges).
pub fn far_distribution(max_half_n: usize) -> impl Strategy<Value = DiscreteDistribution> {
    far_instance(max_half_n).prop_map(|(f, n, eps)| {
        f.instantiate(n, eps)
            .expect("far_instance filtered to valid combinations")
    })
}

/// A connected graph from the [`Topology`] catalogue on roughly
/// `min_k..=max_k` nodes (some topologies round the node count; read it
/// back from [`Graph::node_count`]).
pub fn topology_graph(min_k: usize, max_k: usize) -> impl Strategy<Value = Graph> {
    assert!(min_k >= 1 && min_k <= max_k, "need 1 <= min_k <= max_k");
    (0usize..Topology::ALL.len(), min_k..=max_k, any::<u64>()).prop_map(|(t, k, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        Topology::ALL[t].instantiate(k, &mut rng)
    })
}

/// A labeled conductance-testing instance: `(graph, is_expander)`.
/// Expander draws come from the Margulis–Gabber–Galil family
/// (`side ∈ 3..=max_side`, so `9..=max_side²` nodes) and far draws are
/// two bridged cliques on an even node count in `12..=2·max_side²`
/// (clique side ≥ 6 keeps Φ = 1/(side·(side−1)+1) below 0.05) —
/// the completeness/soundness generator pair of the conductance
/// tester's suites. Both labels appear with equal probability.
pub fn conductance_instance(max_side: usize) -> impl Strategy<Value = (Graph, bool)> {
    assert!(max_side >= 3, "need max_side >= 3");
    (
        any::<bool>(),
        3usize..=max_side,
        6usize..=max_side * max_side,
    )
        .prop_map(|(expander, side, half)| {
            if expander {
                (MargulisExpander::new(side).materialize(), true)
            } else {
                (bridged_cliques(2 * half), false)
            }
        })
}

/// A seeded [`FaultPlan`] with drop probability below `max_drop`, flip
/// probability below `max_flip`, and up to two crashes among
/// `max_nodes` nodes in the first `max_rounds` rounds. Roughly one plan
/// in four is the fault-free [`FaultPlan::none`], so fault-free paths
/// stay covered.
pub fn fault_plan(
    max_nodes: usize,
    max_rounds: usize,
    max_drop: f64,
    max_flip: f64,
) -> impl Strategy<Value = FaultPlan> {
    assert!(max_nodes >= 1 && max_rounds >= 1, "need nonempty ranges");
    assert!(
        (0.0..=1.0).contains(&max_drop) && (0.0..=1.0).contains(&max_flip),
        "probabilities must be in [0, 1]"
    );
    (
        any::<u64>(),
        0usize..4,
        0.0f64..=max_drop,
        0.0f64..=max_flip,
        collection::vec((0usize..max_nodes, 0usize..max_rounds), 0..3),
    )
        .prop_map(|(seed, none_draw, drop, flip, crashes)| {
            if none_draw == 0 {
                return FaultPlan::none();
            }
            let mut plan = FaultPlan::seeded(seed).with_drops(drop).with_flips(flip);
            for (node, round) in crashes {
                plan = plan.with_crash(node, round);
            }
            plan
        })
}

/// A sample stream partitioned into shards, with a shard merge order —
/// the input shape of the sketch merge-law differential suites.
///
/// The samples live on the domain `{0, .., domain-1}`; `shard_of[i]`
/// assigns sample `i` to one of `shards` shards, and `merge_order` is a
/// permutation of `0..shards` giving the order the shard sketches are
/// folded together. A mergeable sketch must produce bit-identical state
/// from *any* value of `shard_of` and `merge_order` (the counting
/// sketches are permutation-invariant, so arbitrary per-sample
/// assignment is a valid adversary, not just contiguous splits).
#[derive(Debug, Clone)]
pub struct MergeSplit {
    /// Domain size the samples are drawn from.
    pub domain: usize,
    /// The full sample stream.
    pub samples: Vec<usize>,
    /// Shard index (`< shards`) of each sample.
    pub shard_of: Vec<usize>,
    /// Number of shards.
    pub shards: usize,
    /// A permutation of `0..shards`: the order shard sketches merge.
    pub merge_order: Vec<usize>,
}

impl MergeSplit {
    /// The samples assigned to `shard`, in stream order.
    pub fn shard_samples(&self, shard: usize) -> Vec<usize> {
        self.samples
            .iter()
            .zip(&self.shard_of)
            .filter(|&(_, &s)| s == shard)
            .map(|(&x, _)| x)
            .collect()
    }
}

/// A [`MergeSplit`] with up to `max_domain` domain size, up to
/// `max_samples` samples, and up to `max_shards` shards. Sample values
/// are skewed (quadratic map) so collisions actually occur at small
/// sample counts, and the merge order is a seeded Fisher–Yates
/// permutation.
pub fn merge_split(
    max_domain: usize,
    max_samples: usize,
    max_shards: usize,
) -> impl Strategy<Value = MergeSplit> {
    assert!(max_domain >= 2, "need max_domain >= 2");
    assert!(max_samples >= 2, "need max_samples >= 2");
    assert!(max_shards >= 1, "need max_shards >= 1");
    (2usize..=max_domain, 1usize..=max_shards).prop_flat_map(move |(domain, shards)| {
        (
            collection::vec(0.0f64..1.0, 2..max_samples + 1),
            collection::vec(0usize..shards, max_samples),
            any::<u64>(),
        )
            .prop_map(move |(raw, assignment, seed)| {
                // Square the unit draw so small values are
                // overrepresented: collisions appear even when
                // samples ≪ √domain.
                let samples: Vec<usize> = raw
                    .iter()
                    .map(|&u| ((u * u) * domain as f64) as usize % domain)
                    .collect();
                let shard_of = assignment[..samples.len()].to_vec();
                let mut merge_order: Vec<usize> = (0..shards).collect();
                // Seeded Fisher–Yates via splitmix-style mixing.
                let mut state = seed;
                for i in (1..shards).rev() {
                    state = state
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(0x2545_F491_4F6C_DD1D);
                    let j = (state >> 33) as usize % (i + 1);
                    merge_order.swap(i, j);
                }
                MergeSplit {
                    domain,
                    samples,
                    shard_of,
                    shards,
                    merge_order,
                }
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pmf_is_normalized(p in pmf(1, 40)) {
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            prop_assert!(p.iter().all(|&x| x > 0.0 && x.is_finite()));
            prop_assert!(DiscreteDistribution::from_pmf(p).is_ok());
        }

        #[test]
        fn far_instances_construct(d in far_distribution(32)) {
            prop_assert!(d.domain_size() >= 8);
        }

        #[test]
        fn topologies_are_connected(g in topology_graph(2, 24)) {
            prop_assert!(g.node_count() >= 1);
            let (_, components) = g.connected_components();
            prop_assert_eq!(components, 1);
        }

        #[test]
        fn conductance_instances_match_their_labels(
            (g, is_expander) in conductance_instance(4)
        ) {
            prop_assert!(g.node_count() >= 8);
            let (_, components) = g.connected_components();
            prop_assert_eq!(components, 1);
            if g.node_count() <= 20 {
                let phi = crate::oracles::exact_conductance(&g);
                if is_expander {
                    prop_assert!(phi > 0.2, "expander with phi {phi}");
                } else {
                    prop_assert!(phi < 0.05, "far instance with phi {phi}");
                }
            }
        }

        #[test]
        fn fault_plans_are_within_bounds(plan in fault_plan(8, 20, 0.3, 0.05)) {
            prop_assert!((0.0..=0.3).contains(&plan.drop_prob));
            prop_assert!((0.0..=0.05).contains(&plan.flip_prob));
            prop_assert!(plan.crashes.len() <= 2);
        }

        #[test]
        fn merge_splits_are_well_formed(ms in merge_split(64, 40, 6)) {
            prop_assert!(ms.domain >= 2 && ms.domain <= 64);
            prop_assert!(ms.samples.len() >= 2 && ms.samples.len() <= 40);
            prop_assert_eq!(ms.samples.len(), ms.shard_of.len());
            prop_assert!(ms.samples.iter().all(|&x| x < ms.domain));
            prop_assert!(ms.shard_of.iter().all(|&s| s < ms.shards));
            // merge_order is a permutation of 0..shards.
            let mut order = ms.merge_order.clone();
            order.sort_unstable();
            let expect: Vec<usize> = (0..ms.shards).collect();
            prop_assert_eq!(order, expect);
            // Shard slices partition the stream.
            let total: usize = (0..ms.shards)
                .map(|s| ms.shard_samples(s).len())
                .sum();
            prop_assert_eq!(total, ms.samples.len());
        }
    }

    #[test]
    fn merge_splits_produce_collisions_and_shuffled_orders() {
        // The strategy must actually exercise the interesting regime:
        // repeated sample values and non-identity merge orders.
        let strat = merge_split(64, 40, 6);
        let (mut collided, mut shuffled) = (false, false);
        for case in 0..100u32 {
            let mut rng = proptest::TestRng::for_case("merge_split_coverage", case);
            let ms = strat.generate(&mut rng);
            let mut sorted = ms.samples.clone();
            sorted.sort_unstable();
            collided |= sorted.windows(2).any(|w| w[0] == w[1]);
            shuffled |= ms.merge_order.windows(2).any(|w| w[0] > w[1]);
        }
        assert!(
            collided && shuffled,
            "coverage: collided={collided} shuffled={shuffled}"
        );
    }

    #[test]
    fn hostile_weights_hit_the_specials() {
        // Over enough draws the palette must produce each special kind.
        let strat = hostile_weights(8, 16);
        let (mut nan, mut inf, mut neg, mut max) = (false, false, false, false);
        for case in 0..200u32 {
            let mut rng = proptest::TestRng::for_case("hostile_specials", case);
            for w in strat.generate(&mut rng) {
                nan |= w.is_nan();
                inf |= w.is_infinite();
                neg |= w < 0.0;
                max |= w == f64::MAX;
            }
        }
        assert!(
            nan && inf && neg && max,
            "palette coverage: nan={nan} inf={inf} neg={neg} max={max}"
        );
    }
}
