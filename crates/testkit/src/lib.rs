//! Cross-crate correctness tooling for the distributed-uniformity-testing
//! workspace.
//!
//! Every `dut-*` crate tests the same three kinds of objects — discrete
//! distributions, network/fault configurations, and coded wire words —
//! and before this crate each test tree grew its own ad-hoc generators
//! and its own half-reference implementations to check against. This
//! crate centralizes that machinery:
//!
//! * [`strategies`] — proptest strategies shared by every crate's test
//!   tree: valid probability mass functions, *hostile* weight vectors
//!   (NaN/±inf/denormal/negative entries, overflowing sums),
//!   far-from-uniform family instances, graph topologies, and seeded
//!   [`dut_netsim::fault::FaultPlan`]s.
//! * [`oracles`] — exact small-`n` reference oracles, implemented
//!   independently of the production closed forms: brute-force and
//!   elementary-symmetric all-distinct probabilities (the failure law
//!   of the single-collision gap tester), reference L1 distance and
//!   collision probability χ. Agreement tests pit these against
//!   `dut_distributions::exact` and `dut_core::montecarlo`.
//! * [`fuzz`] — seeded differential fuzz drivers: Reed–Solomon and
//!   Justesen codec round-trips under random corruption at, below, and
//!   beyond the certified radius, and token packaging under randomized
//!   fault plans. Drivers run decode paths under `catch_unwind` and
//!   report — the typed-error contract of the decoders means a panic is
//!   always a bug.
//! * [`chaos`] — adversarial fault search: bracketing binary search on
//!   drop/flip rates to the failure frontier of the robust packaging
//!   pipeline, plus delta-debugging of crash schedules down to a
//!   1-minimal witness plan. Produces a typed `FaultBoundaryReport`
//!   that is bit-identical at 1, 2, and 8 search threads.
//! * [`parallel`] — the serial ↔ parallel differential harness for the
//!   Monte-Carlo executor: one trial closure run serial, 2-thread, and
//!   8-thread/ragged-chunk, asserting bit-identical estimates and
//!   merged metrics. Backs the `parallel_differential` integration
//!   suites in `dut-core` and `dut-congest`.
//!
//! The crate is a *dev-dependency* of the crates it exercises (Cargo
//! permits the cycle: `dut-testkit` depends on `dut-ecc`, and `dut-ecc`
//! dev-depends on `dut-testkit`), so the same strategies and oracles are
//! usable from every test tree without duplication.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod fuzz;
pub mod oracles;
pub mod parallel;
pub mod strategies;
