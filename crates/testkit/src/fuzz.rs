//! Seeded differential fuzz drivers.
//!
//! Each driver runs a fixed number of randomized cases from a single
//! `u64` seed (fully reproducible), exercises a decode or protocol path
//! under [`std::panic::catch_unwind`], and tallies outcomes into a
//! report. The typed-error contracts of the exercised APIs mean
//! **every panic is a bug**; reports expose an
//! `assert_contract` helper that test trees call to fail loudly with
//! the full tally.
//!
//! Corruption placement relative to the certified radius is the point:
//! at or below `⌊(N−K)/2⌋` errors a decoder must round-trip *exactly*;
//! beyond it, it may reject (typed) or settle on a different codeword —
//! but it must stay total.

use dut_congest::{robust_bandwidth_model, solve_token_packaging_robust, PackagingError};
use dut_ecc::rs_decode::DecodeError;
use dut_ecc::{BinaryCode, GaloisField, JustesenCode};
use dut_netsim::fault::FaultPlan;
use dut_netsim::topology::Topology;
use dut_obs::sink::NoopSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Splits an RS codeword index set: picks `t` distinct positions.
fn distinct_positions<R: Rng + ?Sized>(rng: &mut R, n: usize, t: usize) -> Vec<usize> {
    let mut positions: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        positions.swap(i, j);
    }
    positions.truncate(t);
    positions
}

/// Outcome tally of a codec corruption-fuzz run.
///
/// Contract fields (`wrong_decodes`, `panics`) must be zero; the
/// classification fields exist so tests can also assert the run
/// actually *covered* the interesting regimes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodecFuzzReport {
    /// Cases run.
    pub cases: usize,
    /// Cases corrupted at or below the certified radius (must
    /// round-trip exactly).
    pub within_radius: usize,
    /// Cases corrupted beyond the certified radius.
    pub beyond_radius: usize,
    /// Beyond-radius cases the decoder rejected with
    /// [`DecodeError::BeyondCapacity`] (the rest legally decoded to
    /// some other codeword).
    pub beyond_rejected: usize,
    /// Cases fed a wrong-length word (must yield
    /// [`DecodeError::WrongLength`]).
    pub wrong_length: usize,
    /// Contract violations: a within-radius case that did not decode to
    /// the original message, or a wrong-length case without the typed
    /// error. Must be zero.
    pub wrong_decodes: usize,
    /// Decoder panics. Must be zero — decode is total by contract.
    pub panics: usize,
}

impl CodecFuzzReport {
    /// Panics with the full tally unless the contract fields are clean
    /// and every corruption regime was exercised.
    pub fn assert_contract(&self) {
        assert!(
            self.panics == 0 && self.wrong_decodes == 0,
            "codec fuzz contract violated: {self:?}"
        );
        assert!(
            self.within_radius > 0 && self.beyond_radius > 0 && self.wrong_length > 0,
            "codec fuzz did not cover all corruption regimes: {self:?}"
        );
    }
}

/// Fuzzes [`dut_ecc::rs::RsCode`] encode→corrupt→decode round-trips.
///
/// Each case draws a field `GF(2^m)` (`3 ≤ m ≤ 6`), a random `[n, k]`
/// code, a random message, and either a wrong-length word (~1 in 16) or
/// `t` corrupted symbols with `t` ranging from clean through twice the
/// certified capacity. Corruption stays inside the field alphabet (the
/// decoder's symbol domain).
pub fn fuzz_rs_codec(seed: u64, cases: usize) -> CodecFuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = CodecFuzzReport {
        cases,
        ..CodecFuzzReport::default()
    };
    for _ in 0..cases {
        let m = rng.gen_range(3..=6u32);
        let field = GaloisField::new(m);
        let size = field.size();
        let n = rng.gen_range(4..=size.min(24));
        let k = rng.gen_range(1..=n - 2);
        let rs = dut_ecc::rs::RsCode::new(&field, n, k);
        let capacity = (n - k) / 2;
        let message: Vec<u16> = (0..k).map(|_| rng.gen_range(0..size) as u16).collect();
        let mut word = rs.encode(&message);

        if rng.gen_range(0..16u32) == 0 {
            // Wrong-length regime: drop or append symbols.
            report.wrong_length += 1;
            if rng.gen::<bool>() && word.len() > 1 {
                word.pop();
            } else {
                word.push(rng.gen_range(0..size) as u16);
            }
            match catch_unwind(AssertUnwindSafe(|| rs.decode(&word))) {
                Ok(Err(DecodeError::WrongLength { expected, actual })) => {
                    if expected != n || actual != word.len() {
                        report.wrong_decodes += 1;
                    }
                }
                Ok(_) => report.wrong_decodes += 1,
                Err(_) => report.panics += 1,
            }
            continue;
        }

        let t = rng.gen_range(0..=(2 * capacity + 1).min(n));
        for &pos in &distinct_positions(&mut rng, n, t) {
            word[pos] ^= rng.gen_range(1..size) as u16;
        }
        match catch_unwind(AssertUnwindSafe(|| rs.decode(&word))) {
            Ok(outcome) => {
                if t <= capacity {
                    report.within_radius += 1;
                    if outcome != Ok(message) {
                        report.wrong_decodes += 1;
                    }
                } else {
                    report.beyond_radius += 1;
                    match outcome {
                        Err(DecodeError::BeyondCapacity { capacity: c }) if c == capacity => {
                            report.beyond_rejected += 1;
                        }
                        // Legal: the corrupted word landed within
                        // capacity of a *different* codeword.
                        Ok(other) if other != message => {}
                        _ => report.wrong_decodes += 1,
                    }
                }
            }
            Err(_) => report.panics += 1,
        }
    }
    report
}

/// Fuzzes [`JustesenCode`] encode→bit-flip→decode round-trips.
///
/// Each case draws a rate-1/3 instance over `GF(2^m)` (`3 ≤ m ≤ 5`), a
/// random message, and either a truncated wire word (~1 in 16) or `t`
/// distinct wire-bit flips with `t` from clean through past the
/// certified correction radius.
pub fn fuzz_justesen_codec(seed: u64, cases: usize) -> CodecFuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = CodecFuzzReport {
        cases,
        ..CodecFuzzReport::default()
    };
    for _ in 0..cases {
        let m = rng.gen_range(3..=5u32);
        let code = JustesenCode::rate_one_third(m);
        let in_bits = code.input_bits();
        let out_bits = code.output_bits();
        let radius = code.certified_correction_radius();

        // Random message, masked down to exactly `in_bits` bits.
        let mut message: Vec<u64> = (0..in_bits.div_ceil(64)).map(|_| rng.gen()).collect();
        let tail = in_bits % 64;
        if tail != 0 {
            *message.last_mut().expect("non-empty message") &= (1u64 << tail) - 1;
        }
        let mut word = code.encode(&message);

        if rng.gen_range(0..16u32) == 0 {
            report.wrong_length += 1;
            word.pop();
            match catch_unwind(AssertUnwindSafe(|| code.decode(&word))) {
                Ok(Err(DecodeError::WrongLength { expected, .. })) => {
                    if expected != out_bits {
                        report.wrong_decodes += 1;
                    }
                }
                Ok(_) => report.wrong_decodes += 1,
                Err(_) => report.panics += 1,
            }
            continue;
        }

        let t = rng.gen_range(0..=radius + radius / 2 + 2);
        for &bit in &distinct_positions(&mut rng, out_bits, t.min(out_bits)) {
            word[bit / 64] ^= 1u64 << (bit % 64);
        }
        match catch_unwind(AssertUnwindSafe(|| code.decode(&word))) {
            Ok(outcome) => {
                if t <= radius {
                    report.within_radius += 1;
                    if outcome.as_deref() != Ok(&message[..]) {
                        report.wrong_decodes += 1;
                    }
                } else {
                    report.beyond_radius += 1;
                    match outcome {
                        Err(DecodeError::BeyondCapacity { .. }) => report.beyond_rejected += 1,
                        Ok(other) if other != message => {}
                        // Decoding back to the original from beyond the
                        // *certified* radius is possible (the radius is
                        // a lower bound on real correction power).
                        Ok(_) => {}
                        Err(DecodeError::WrongLength { .. }) => report.wrong_decodes += 1,
                    }
                }
            }
            Err(_) => report.panics += 1,
        }
    }
    report
}

/// Outcome tally of a token-packaging fuzz run under randomized fault
/// plans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackagingFuzzReport {
    /// Cases run.
    pub cases: usize,
    /// Runs that produced a packaging (invariants checked).
    pub ok: usize,
    /// Runs rejected with a typed [`PackagingError`] (all legal).
    pub typed_errors: usize,
    /// Definition-2 violations on successful runs: a package whose size
    /// is not exactly τ, or (fault-free only) lost tokens or a root
    /// residue of τ or more. Must be zero.
    pub invariant_violations: usize,
    /// Panics out of the packaging pipeline. Must be zero.
    pub panics: usize,
}

impl PackagingFuzzReport {
    /// Panics with the full tally unless the run was panic-free,
    /// invariant-clean, and covered both success and typed-error paths.
    pub fn assert_contract(&self) {
        assert!(
            self.panics == 0 && self.invariant_violations == 0,
            "packaging fuzz contract violated: {self:?}"
        );
        assert!(
            self.ok > 0 && self.typed_errors > 0,
            "packaging fuzz did not cover both outcome kinds: {self:?}"
        );
    }
}

/// Fuzzes the robust τ-token-packaging pipeline under randomized
/// topologies, token loads, and [`FaultPlan`]s — including invalid
/// inputs (`τ = 0`, mismatched token/id vectors) that must surface as
/// typed errors.
pub fn fuzz_token_packaging(seed: u64, cases: usize) -> PackagingFuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = PackagingFuzzReport {
        cases,
        ..PackagingFuzzReport::default()
    };
    let model = robust_bandwidth_model();
    for _ in 0..cases {
        let t_idx = rng.gen_range(0..Topology::ALL.len());
        let k_req = rng.gen_range(1..=10usize);
        let g = Topology::ALL[t_idx].instantiate(k_req, &mut rng);
        let k = g.node_count();
        let mut tokens: Vec<Vec<u64>> = (0..k)
            .map(|_| {
                let c = rng.gen_range(0..4usize);
                (0..c).map(|_| rng.gen_range(0..997u64)).collect()
            })
            .collect();
        // Distinct ids with a unique maximum: spacing beats the offset.
        let mut ids: Vec<u64> = (0..k)
            .map(|v| u64::from(rng.gen::<u32>()) * 1009 + v as u64)
            .collect();
        // Invalid-input regimes: τ = 0 (~1 in 12), mismatched lengths
        // (~1 in 12).
        let tau = if rng.gen_range(0..12u32) == 0 {
            0
        } else {
            rng.gen_range(1..=5usize)
        };
        let expect_mismatch = rng.gen_range(0..12u32) == 0;
        if expect_mismatch {
            if rng.gen::<bool>() {
                tokens.push(Vec::new());
            } else {
                ids.pop();
            }
        }
        let plan = if rng.gen::<bool>() {
            FaultPlan::none()
        } else {
            let mut p = FaultPlan::seeded(rng.gen())
                .with_drops(rng.gen_range(0.0..0.25))
                .with_flips(rng.gen_range(0.0..0.02));
            for _ in 0..rng.gen_range(0..2u32) {
                p = p.with_crash(rng.gen_range(0..k), rng.gen_range(0..30));
            }
            p
        };

        let total_tokens: usize = tokens.iter().map(Vec::len).sum();
        let fault_free = plan.is_none();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sink = NoopSink;
            solve_token_packaging_robust(&g, &tokens, &ids, tau, model, &plan, 4, &mut sink)
        }));
        match outcome {
            Err(_) => report.panics += 1,
            Ok(Err(e)) => {
                report.typed_errors += 1;
                // The invalid-input regimes must map to their variants.
                if tau == 0 && e != PackagingError::ZeroTau {
                    report.invariant_violations += 1;
                }
                if tau != 0
                    && expect_mismatch
                    && !matches!(e, PackagingError::LengthMismatch { .. })
                {
                    report.invariant_violations += 1;
                }
            }
            Ok(Ok((result, _stats))) => {
                report.ok += 1;
                if result.packages.iter().any(|(_, p)| p.len() != tau) {
                    report.invariant_violations += 1;
                }
                if fault_free {
                    let packaged: usize = result.packages.iter().map(|(_, p)| p.len()).sum();
                    if packaged + result.discarded != total_tokens || result.discarded >= tau {
                        report.invariant_violations += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_fuzz_smoke() {
        fuzz_rs_codec(0xD157_0001, 400).assert_contract();
    }

    #[test]
    fn justesen_fuzz_smoke() {
        fuzz_justesen_codec(0xD157_0002, 200).assert_contract();
    }

    #[test]
    fn packaging_fuzz_smoke() {
        fuzz_token_packaging(0xD157_0003, 60).assert_contract();
    }

    #[test]
    fn fuzz_is_deterministic() {
        assert_eq!(fuzz_rs_codec(42, 100), fuzz_rs_codec(42, 100));
        assert_eq!(fuzz_justesen_codec(42, 50), fuzz_justesen_codec(42, 50));
    }
}
