//! A minimal JSON writer — just enough for the `dut-metrics/1` records.
//!
//! The workspace builds offline with no external crates, so the
//! observability layer serializes by hand, exactly like
//! `dut-bench::table` does for experiment tables. Only the forms the
//! schema needs are provided: objects with string/integer/float/raw
//! fields, built in insertion order.

use std::fmt::Write as _;

/// An incrementally built JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field. Non-finite values serialize as `null`
    /// (JSON has no NaN/infinity).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-serialized JSON value verbatim (e.g. a nested object
    /// built with another `JsonObject`).
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_object_in_order() {
        let mut o = JsonObject::new();
        o.field_str("a", "x").field_u64("b", 7).field_f64("c", 1.5);
        assert_eq!(o.finish(), r#"{"a":"x","b":7,"c":1.5}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("x", f64::NAN).field_f64("y", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn raw_fields_nest() {
        let mut inner = JsonObject::new();
        inner.field_u64("n", 1);
        let mut o = JsonObject::new();
        o.field_raw("params", &inner.finish());
        assert_eq!(o.finish(), r#"{"params":{"n":1}}"#);
    }
}
