//! The `dut-metrics/1` run record and a line-oriented writer.
//!
//! One [`RunRecord`] serializes to one JSON object on one line, so an
//! experiment or bench run appends records to a `.jsonl` file that
//! downstream tooling can diff, grep, and regression-track across
//! PRs. The field set and units are documented in `docs/METRICS.md`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::JsonObject;
use crate::sink::MemorySink;

/// Schema identifier stamped into every record as the `"schema"` field.
///
/// Bump the suffix only on breaking changes to the record layout;
/// adding new keys to `counters`/`histograms` is non-breaking.
pub const SCHEMA: &str = "dut-metrics/1";

/// A typed run parameter (`n`, `eps`, topology name, ...).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An unsigned integer parameter.
    U64(u64),
    /// A float parameter (serialized as `null` if non-finite).
    F64(f64),
    /// A string parameter.
    Str(String),
}

impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::U64(v)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::U64(v as u64)
    }
}

impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::U64(u64::from(v))
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// One run's identity and parameters; pairs with a [`MemorySink`]
/// snapshot to form a complete JSONL line.
#[derive(Debug, Clone, Default)]
pub struct RunRecord {
    experiment: String,
    case: String,
    params: Vec<(String, ParamValue)>,
}

impl RunRecord {
    /// Starts a record for one run of `experiment` (e.g. `"e6"`) on
    /// `case` (a free-form sub-case label, e.g. `"star/uniform"`).
    pub fn new(experiment: &str, case: &str) -> Self {
        RunRecord {
            experiment: experiment.to_string(),
            case: case.to_string(),
            params: Vec::new(),
        }
    }

    /// Appends one named parameter (builder style). Parameters keep
    /// insertion order in the serialized record.
    pub fn param(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.params.push((name.to_string(), value.into()));
        self
    }

    /// Serializes this record plus the sink's accumulated metrics as
    /// one `dut-metrics/1` JSON object (no trailing newline).
    pub fn to_jsonl(&self, sink: &MemorySink) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("schema", SCHEMA);
        obj.field_str("experiment", &self.experiment);
        obj.field_str("case", &self.case);
        let mut params = JsonObject::new();
        for (name, value) in &self.params {
            match value {
                ParamValue::U64(v) => params.field_u64(name, *v),
                ParamValue::F64(v) => params.field_f64(name, *v),
                ParamValue::Str(v) => params.field_str(name, v),
            };
        }
        obj.field_raw("params", &params.finish());
        sink.snapshot_into(&mut obj);
        obj.finish()
    }
}

/// Appends `dut-metrics/1` records to a file, one per line.
#[derive(Debug)]
pub struct JsonlWriter {
    out: BufWriter<File>,
}

impl JsonlWriter {
    /// Creates (truncating) `path` for writing records.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlWriter {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending records, creating it if absent. This
    /// is the mode checkpoint files use: earlier lines survive and new
    /// records accumulate behind them.
    pub fn append(path: &Path) -> io::Result<Self> {
        let file = File::options().append(true).create(true).open(path)?;
        Ok(JsonlWriter {
            out: BufWriter::new(file),
        })
    }

    /// Writes one record line for `record` + `sink`.
    pub fn write(&mut self, record: &RunRecord, sink: &MemorySink) -> io::Result<()> {
        self.out.write_all(record.to_jsonl(sink).as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Sink;

    #[test]
    fn record_serializes_schema_identity_and_params() {
        let mut sink = MemorySink::new();
        sink.add("netsim.bits", 96);
        sink.observe("netsim.round.bits", 96);
        let line = RunRecord::new("e6", "star/uniform")
            .param("n", 4096u64)
            .param("eps", 1.0)
            .param("topology", "star")
            .to_jsonl(&sink);
        assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
        assert!(line.contains("\"experiment\":\"e6\""));
        assert!(line.contains("\"case\":\"star/uniform\""));
        assert!(line.contains("\"params\":{\"n\":4096,\"eps\":1,\"topology\":\"star\"}"));
        assert!(line.contains("\"counters\":{\"netsim.bits\":96}"));
        assert!(line.contains(
            "\"histograms\":{\"netsim.round.bits\":\
             {\"count\":1,\"sum\":96,\"min\":96,\"max\":96,\"mean\":96}}"
        ));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn empty_sink_serializes_empty_maps() {
        let line = RunRecord::new("e1", "x").to_jsonl(&MemorySink::new());
        assert!(line.contains("\"params\":{}"));
        assert!(line.contains("\"counters\":{}"));
        assert!(line.ends_with("\"histograms\":{}}"));
    }

    #[test]
    fn writer_emits_one_line_per_record() {
        let dir = std::env::temp_dir().join("dut_obs_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        let mut w = JsonlWriter::create(&path).unwrap();
        let mut sink = MemorySink::new();
        sink.add("k", 1);
        w.write(&RunRecord::new("e1", "a"), &sink).unwrap();
        w.write(&RunRecord::new("e1", "b"), &sink).unwrap();
        w.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
            assert!(line.ends_with('}'));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_preserves_existing_lines() {
        let dir = std::env::temp_dir().join("dut_obs_append_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.jsonl");
        let sink = MemorySink::new();
        let mut w = JsonlWriter::create(&path).unwrap();
        w.write(&RunRecord::new("e1", "a"), &sink).unwrap();
        w.flush().unwrap();
        drop(w);
        let mut w = JsonlWriter::append(&path).unwrap();
        w.write(&RunRecord::new("e1", "b"), &sink).unwrap();
        w.flush().unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"case\":\"a\""));
        assert!(text.contains("\"case\":\"b\""));
        std::fs::remove_file(&path).unwrap();
    }
}
