//! Zero-dependency observability for the simulators and testers.
//!
//! The paper's theorems are statements about *measurable costs* —
//! samples per node (Theorems 1.1/1.2), rounds and bits on the wire
//! (Theorems 5.1/1.4, Lemma 7.3). This crate is the shared substrate
//! every layer reports those costs through, so experiments and
//! benchmarks emit comparable numbers instead of bespoke printouts.
//! The full key registry, units, and the theorem each metric checks
//! against are documented in [`keys`] and in `docs/METRICS.md` at the
//! repository root.
//!
//! # Design
//!
//! * [`Sink`] — the recording interface instrumented code writes to:
//!   monotone counters ([`Sink::add`]) and histogram observations
//!   ([`Sink::observe`]). All values are `u64` (bits, rounds, counts,
//!   nanoseconds) so accumulation is exact and deterministic.
//! * [`NoopSink`] — the default sink. It reports
//!   [`Sink::enabled`]` == false`, which instrumented hot paths use to
//!   skip *measurement itself* (clock reads, per-round deltas), so
//!   instrumentation costs nothing when observability is off.
//! * [`MemorySink`] — an in-memory accumulator (sorted maps of counters
//!   and [`Histogram`]s) that snapshots into the JSONL record format.
//! * [`Span`] — a timer that respects the enabled gate: started on a
//!   disabled sink it never reads the clock.
//! * [`RunRecord`] + [`JsonlWriter`] — one JSON object per run in the
//!   stable `dut-metrics/1` schema (`docs/METRICS.md`), hand-serialized
//!   by [`json`] so the crate stays dependency-free.
//!
//! # Example
//!
//! ```rust
//! use dut_obs::{keys, MemorySink, RunRecord, Sink, Span};
//!
//! let mut sink = MemorySink::new();
//! let span = Span::start(&sink);
//! sink.add(keys::NETSIM_BITS, 96);
//! sink.observe(keys::NETSIM_ROUND_BITS, 96);
//! span.finish(&mut sink, keys::NETSIM_ROUND_NANOS);
//!
//! assert_eq!(sink.counter(keys::NETSIM_BITS), 96);
//! let line = RunRecord::new("e6", "star/uniform")
//!     .param("n", 4096u64)
//!     .to_jsonl(&sink);
//! assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hist;
pub mod json;
pub mod keys;
pub mod record;
pub mod sink;
pub mod span;

pub use hist::Histogram;
pub use record::{JsonlWriter, ParamValue, RunRecord, SCHEMA};
pub use sink::{MemorySink, NoopSink, Sink};
pub use span::Span;
