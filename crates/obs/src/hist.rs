//! A fixed-size power-of-two histogram.
//!
//! Observations are `u64` values (bits, rounds, nanoseconds); bucket
//! `i` counts the values whose bit length is `i` (so bucket 0 holds
//! only zeros, bucket 1 holds `1`, bucket 2 holds `2..=3`, and so on).
//! This gives ~2x resolution over the full `u64` range in a flat
//! 65-slot array — no allocation, no configuration, and merging two
//! histograms is element-wise addition, which keeps differential tests
//! exact.

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
pub const BUCKETS: usize = 65;

/// A power-of-two histogram with exact count/sum/min/max side stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts; bucket `i` holds values of bit length `i`.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Reconstructs a histogram from previously serialized state
    /// (checkpoint resume); the inverse of reading [`Histogram::count`],
    /// [`Histogram::sum`], [`Histogram::min`], [`Histogram::max`], and
    /// [`Histogram::buckets`] off a recorded histogram.
    ///
    /// Returns `None` when the parts are inconsistent: bucket counts
    /// that don't sum to `count`, a nonempty histogram with
    /// `min > max`, or an empty one with nonzero side stats — so a
    /// corrupt checkpoint surfaces as an error instead of skewed
    /// statistics.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    ) -> Option<Self> {
        let bucket_total: u64 = buckets.iter().copied().fold(0, u64::saturating_add);
        if bucket_total != count {
            return None;
        }
        if count == 0 {
            if sum != 0 || min != 0 || max != 0 {
                return None;
            }
            return Some(Histogram::new());
        }
        if min > max {
            return None;
        }
        Some(Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Element-wise merge of `other` into `self` (used to aggregate
    /// per-thread or per-run sinks).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// The bucket a value lands in: its bit length (0 for value 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn records_track_side_stats() {
        let mut h = Histogram::new();
        for v in [4u64, 1, 9, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        let mut h = Histogram::new();
        h.record(2);
        h.record(3);
        assert_eq!(h.buckets()[2], 2);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 7, 1 << 20] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), *h.buckets()).unwrap();
        assert_eq!(rebuilt, h);
        // Empty round-trips too (min is stored as u64::MAX internally
        // but reported as 0).
        let e = Histogram::new();
        let rebuilt = Histogram::from_parts(0, 0, 0, 0, [0; BUCKETS]).unwrap();
        assert_eq!(rebuilt.count(), e.count());
        assert_eq!(rebuilt.min(), e.min());
    }

    #[test]
    fn from_parts_rejects_inconsistency() {
        // Buckets don't sum to count.
        assert!(Histogram::from_parts(3, 10, 1, 9, [0; BUCKETS]).is_none());
        // Empty with nonzero side stats.
        assert!(Histogram::from_parts(0, 1, 0, 0, [0; BUCKETS]).is_none());
        // min > max on a nonempty histogram.
        let mut b = [0u64; BUCKETS];
        b[2] = 1;
        assert!(Histogram::from_parts(1, 3, 9, 3, b).is_none());
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, snapshot);
    }
}
