//! The recording interface and its two standard implementations.
//!
//! Instrumented code takes a `&mut dyn Sink` and writes monotone
//! counters and histogram observations to it. The contract that keeps
//! hot paths free when observability is off:
//!
//! * [`Sink::enabled`] must be cheap (a constant for the standard
//!   sinks). Instrumented code uses it to skip *measurement itself* —
//!   clock reads, per-round counter deltas — not just the `add` call.
//! * `add`/`observe` on a disabled sink are still safe no-ops, so
//!   call sites that already have a value on hand need no branch.
//! * Sinks never touch the RNG or the simulated protocol state, so an
//!   instrumented run is bit-identical to an uninstrumented one.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::JsonObject;

/// Destination for metrics: monotone counters and histogram samples.
///
/// Keys are `&'static str` constants from [`crate::keys`] so recording
/// never allocates. The trait is object-safe; instrumented APIs accept
/// `&mut dyn Sink` to avoid generics bleeding through the stack.
pub trait Sink {
    /// Whether this sink records anything.
    ///
    /// Instrumented code gates *measurement* on this (e.g. it skips
    /// `Instant::now()` and per-round delta bookkeeping when `false`),
    /// so a disabled sink makes instrumentation cost nothing.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the monotone counter named `key`.
    fn add(&mut self, key: &'static str, delta: u64);

    /// Records one observation of `value` in the histogram named `key`.
    fn observe(&mut self, key: &'static str, value: u64);
}

/// The default sink: records nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&mut self, _key: &'static str, _delta: u64) {}

    fn observe(&mut self, _key: &'static str, _value: u64) {}
}

/// An in-memory accumulator over sorted maps, for tests and the
/// `--metrics` modes of the experiments/bench binaries.
///
/// `BTreeMap` keeps snapshot iteration in deterministic key order, so
/// two runs with the same seed serialize to byte-identical JSONL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySink {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Current value of the counter `key` (0 if never added to).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The histogram recorded under `key`, if any observation was made.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Clears every counter and histogram, keeping allocations.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Folds a whole [`Histogram`] into the one recorded under `key`
    /// (element-wise, like [`MemorySink::merge`]). This is how
    /// checkpoint resume restores full-fidelity histograms — counters
    /// restore through plain [`Sink::add`].
    pub fn merge_histogram(&mut self, key: &'static str, h: &Histogram) {
        self.histograms.entry(key).or_default().merge(h);
    }

    /// Folds every counter and histogram of `other` into `self`.
    pub fn merge(&mut self, other: &MemorySink) {
        for (k, v) in other.counters.iter() {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.histograms.iter() {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Serializes the accumulated state as two nested JSON objects,
    /// `"counters"` and `"histograms"`, into `obj`.
    ///
    /// Histograms are summarized as `{count, sum, min, max, mean}`;
    /// the raw buckets stay in memory (tests can read them via
    /// [`MemorySink::histogram`]) so records stay one line.
    pub(crate) fn snapshot_into(&self, obj: &mut JsonObject) {
        let mut counters = JsonObject::new();
        for (k, v) in self.counters.iter() {
            counters.field_u64(k, *v);
        }
        obj.field_raw("counters", &counters.finish());

        let mut hists = JsonObject::new();
        for (k, h) in self.histograms.iter() {
            let mut one = JsonObject::new();
            one.field_u64("count", h.count());
            one.field_u64("sum", h.sum());
            one.field_u64("min", h.min());
            one.field_u64("max", h.max());
            one.field_f64("mean", h.mean());
            hists.field_raw(k, &one.finish());
        }
        obj.field_raw("histograms", &hists.finish());
    }
}

impl Sink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_silent() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.add("x", 5);
        s.observe("x", 5);
    }

    #[test]
    fn memory_sink_accumulates_counters() {
        let mut s = MemorySink::new();
        assert!(s.enabled());
        s.add("a", 2);
        s.add("a", 3);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn memory_sink_accumulates_histograms() {
        let mut s = MemorySink::new();
        s.observe("h", 4);
        s.observe("h", 6);
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn merge_folds_both_kinds() {
        let mut a = MemorySink::new();
        a.add("c", 1);
        a.observe("h", 8);
        let mut b = MemorySink::new();
        b.add("c", 2);
        b.add("d", 7);
        b.observe("h", 16);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = MemorySink::new();
        s.add("c", 1);
        s.observe("h", 1);
        s.reset();
        assert_eq!(s.counter("c"), 0);
        assert!(s.histogram("h").is_none());
        assert_eq!(s.counters().count(), 0);
    }

    #[test]
    fn dyn_sink_dispatch_works() {
        let mut mem = MemorySink::new();
        let sink: &mut dyn Sink = &mut mem;
        sink.add("k", 9);
        assert_eq!(mem.counter("k"), 9);
    }
}
