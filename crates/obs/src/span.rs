//! Wall-clock span timers that respect the sink's enabled gate.

use std::time::Instant;

use crate::sink::Sink;

/// A wall-clock timer for one span of work (a round, a phase, a run).
///
/// `Span::start` reads the clock only when the sink is enabled, so a
/// span started against a [`crate::NoopSink`] costs two branches and
/// no syscalls. Finish it explicitly with [`Span::finish`] — spans
/// deliberately do not record on drop, because an observation needs a
/// key and a sink, and implicit recording in destructors would hide
/// clock reads in hot loops.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    started: Option<Instant>,
}

impl Span {
    /// Starts a timer, reading the clock only if `sink.enabled()`.
    pub fn start(sink: &dyn Sink) -> Self {
        Span {
            started: if sink.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// A span that is always off regardless of the sink it is
    /// finished against. Useful as an initializer before a loop.
    pub fn disabled() -> Self {
        Span { started: None }
    }

    /// Records the elapsed nanoseconds (saturated to `u64`) into
    /// `sink` under `key`, if the span was started enabled.
    ///
    /// Returns the elapsed nanoseconds, or 0 for a disabled span.
    pub fn finish(self, sink: &mut dyn Sink, key: &'static str) -> u64 {
        match self.started {
            Some(t0) => {
                let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                sink.observe(key, nanos);
                nanos
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, NoopSink};

    #[test]
    fn span_records_elapsed_on_enabled_sink() {
        let mut sink = MemorySink::new();
        let span = Span::start(&sink);
        let nanos = span.finish(&mut sink, "t");
        let h = sink.histogram("t").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), nanos);
    }

    #[test]
    fn span_on_disabled_sink_never_records() {
        let noop = NoopSink;
        let span = Span::start(&noop);
        // Finishing against an enabled sink still records nothing:
        // the span was never started.
        let mut sink = MemorySink::new();
        assert_eq!(span.finish(&mut sink, "t"), 0);
        assert!(sink.histogram("t").is_none());
    }

    #[test]
    fn disabled_constructor_matches_disabled_start() {
        let mut sink = MemorySink::new();
        assert_eq!(Span::disabled().finish(&mut sink, "t"), 0);
        assert!(sink.histogram("t").is_none());
    }
}
