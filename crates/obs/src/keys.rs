//! The metric key registry.
//!
//! Every instrumented call site uses one of these constants, so the
//! set of keys a binary can emit is closed and greppable, and
//! `docs/METRICS.md` can document each one's unit and the theorem it
//! checks against. Naming convention: `<layer>.<subject>.<measure>`,
//! with `<layer>.round.*` for per-round histogram observations and
//! plain `<layer>.*` for run-total counters.
//!
//! The `registry!` declaration also collects every
//! key into [`ALL`], and [`lookup`] maps a runtime string back to its
//! `&'static str` constant — which is how checkpoint files
//! (`dut_core::checkpoint`) restore a [`crate::MemorySink`] whose maps
//! are keyed by `&'static str`.

/// Declares the key constants and collects them into [`ALL`] so the
/// registry and the constants can never drift apart.
macro_rules! registry {
    ($($(#[$meta:meta])* $name:ident = $value:literal;)+) => {
        $($(#[$meta])* pub const $name: &str = $value;)+

        /// Every key in the registry, in declaration order.
        pub const ALL: &[&str] = &[$($value),+];
    };
}

registry! {
    // -------------------------------------------------------------- netsim

    /// Counter: engine runs completed (one per `run_observed` call).
    NETSIM_RUNS = "netsim.runs";
    /// Counter: synchronous rounds executed, summed over runs.
    NETSIM_ROUNDS = "netsim.rounds";
    /// Counter: messages delivered, summed over runs.
    NETSIM_MESSAGES = "netsim.messages";
    /// Counter: message payload bits metered by the bandwidth model.
    NETSIM_BITS = "netsim.bits";
    /// Histogram: messages delivered in one round.
    NETSIM_ROUND_MESSAGES = "netsim.round.messages";
    /// Histogram: payload bits delivered in one round.
    NETSIM_ROUND_BITS = "netsim.round.bits";
    /// Histogram: max bits crossing any single directed edge in one round
    /// (per-round slot congestion; the CONGEST model caps this).
    NETSIM_ROUND_MAX_EDGE_BITS = "netsim.round.max_edge_bits";
    /// Histogram: wall-clock nanoseconds spent executing one round
    /// (node stepping + metering + delivery).
    NETSIM_ROUND_NANOS = "netsim.round.nanos";
    /// Histogram: per-run max bits on any directed edge in any round.
    NETSIM_RUN_MAX_EDGE_BITS = "netsim.run.max_edge_bits";

    // ------------------------------------------- netsim scale-out (PR 8)

    /// Counter: rounds whose delivery ran the sharded (multi-threaded
    /// counting-sort) path. Recorded only when sharding is opted into
    /// via `RunOptions::with_shard_delivery` and the round cleared the
    /// size threshold.
    NETSIM_SHARD_ROUNDS = "netsim.shard.rounds";
    /// Counter: messages delivered by sharded rounds (subset of
    /// `netsim.messages`).
    NETSIM_SHARD_MESSAGES = "netsim.shard.messages";
    /// Counter: rounds stepped in sparse-activity mode (only nodes with
    /// pending messages visited). Recorded only under
    /// `RunOptions::with_sparse`.
    NETSIM_SPARSE_ROUNDS = "netsim.sparse.rounds";
    /// Histogram: nodes visited in one sparse-activity round (round 0
    /// visits all nodes and is not recorded).
    NETSIM_SPARSE_ACTIVE_NODES = "netsim.sparse.active_nodes";

    // -------------------------------------------------- netsim fault layer

    /// Counter: messages dropped in transit by fault injection (the sender
    /// was still metered for them). Recorded only on faulted runs.
    NETSIM_FAULT_DROPPED_MESSAGES = "netsim.fault.dropped_messages";
    /// Counter: wire bits flipped in transit by fault injection. Recorded
    /// only on faulted runs.
    NETSIM_FAULT_FLIPPED_BITS = "netsim.fault.flipped_bits";
    /// Counter: scheduled node crashes that took effect within the run.
    NETSIM_FAULT_CRASHED_NODES = "netsim.fault.crashed_nodes";
    /// Counter: scheduled node rejoins that took effect within the run
    /// (a crashed node coming back with its pre-crash state). Recorded
    /// only on faulted runs whose plan has a rejoin schedule.
    NETSIM_REJOIN_NODES = "netsim.rejoin.nodes";
    /// Counter: total rounds spent down by nodes whose outage ended in
    /// a rejoin (each rejoin contributes `rejoin_round - crash_round`)
    /// — the run's aggregate recovery time.
    NETSIM_REJOIN_DOWNTIME_ROUNDS = "netsim.rejoin.downtime_rounds";
    /// Counter: retransmissions performed by the reliable (ack/retry) tree
    /// primitives, beyond each message's first transmission.
    NETSIM_RELIABLE_RETRANSMITS = "netsim.reliable.retransmits";
    /// Counter: delivery failures in the reliable tree primitives — a
    /// sender exhausted its retry budget, or a receiver hit its deadline
    /// with children still unreported.
    NETSIM_RELIABLE_FAILURES = "netsim.reliable.failures";

    // ----------------------------------------------------- netsim reference

    /// Counter: reference-engine runs completed.
    REFERENCE_RUNS = "reference.runs";
    /// Counter: rounds executed by the reference engine.
    REFERENCE_ROUNDS = "reference.rounds";
    /// Counter: messages delivered by the reference engine.
    REFERENCE_MESSAGES = "reference.messages";
    /// Counter: bits metered by the reference engine.
    REFERENCE_BITS = "reference.bits";
    /// Histogram: messages per round in the reference engine.
    REFERENCE_ROUND_MESSAGES = "reference.round.messages";
    /// Histogram: bits per round in the reference engine.
    REFERENCE_ROUND_BITS = "reference.round.bits";
    /// Histogram: per-round max single-edge bits in the reference engine.
    REFERENCE_ROUND_MAX_EDGE_BITS = "reference.round.max_edge_bits";
    /// Histogram: wall-clock nanoseconds per reference-engine round.
    REFERENCE_ROUND_NANOS = "reference.round.nanos";
    /// Counter: messages dropped by fault injection in the reference
    /// engine (differential mirror of `netsim.fault.dropped_messages`).
    REFERENCE_FAULT_DROPPED_MESSAGES = "reference.fault.dropped_messages";
    /// Counter: wire bits flipped by fault injection in the reference
    /// engine (differential mirror of `netsim.fault.flipped_bits`).
    REFERENCE_FAULT_FLIPPED_BITS = "reference.fault.flipped_bits";

    // ----------------------------------------------- netsim tree primitives

    /// Counter: convergecast invocations.
    CONVERGECAST_RUNS = "netsim.convergecast.runs";
    /// Counter: rounds spent inside convergecast.
    CONVERGECAST_ROUNDS = "netsim.convergecast.rounds";
    /// Counter: payload bits carried by convergecast messages.
    CONVERGECAST_BITS = "netsim.convergecast.bits";
    /// Counter: broadcast invocations.
    BROADCAST_RUNS = "netsim.broadcast.runs";
    /// Counter: rounds spent inside broadcast.
    BROADCAST_ROUNDS = "netsim.broadcast.rounds";
    /// Counter: payload bits carried by broadcast messages.
    BROADCAST_BITS = "netsim.broadcast.bits";

    // ---------------------------------------------------------------- core

    /// Counter: gap-tester runs (one per tested sample multiset).
    CORE_GAP_RUNS = "core.gap.runs";
    /// Counter: samples consumed by the gap tester (Thm 1.1: s per run).
    CORE_GAP_SAMPLES = "core.gap.samples";
    /// Counter: gap-tester runs that found a collision (the tester's
    /// single reject bit; it does not count individual colliding pairs).
    CORE_GAP_COLLISIONS = "core.gap.collisions";
    /// Counter: amplified-tester runs.
    CORE_AMPLIFY_RUNS = "core.amplify.runs";
    /// Counter: independent repetitions executed across amplified runs.
    CORE_AMPLIFY_REPETITIONS = "core.amplify.repetitions";
    /// Counter: rejecting repetitions across amplified runs.
    CORE_AMPLIFY_REJECTIONS = "core.amplify.rejections";
    /// Counter: zero-round network simulations.
    CORE_ZERO_ROUND_RUNS = "core.zero_round.runs";
    /// Counter: per-node votes cast inside zero-round simulations
    /// (equals nodes x runs; the protocol sends no messages, Thm 1.2).
    CORE_ZERO_ROUND_VOTES = "core.zero_round.votes";
    /// Counter: rejecting votes inside zero-round simulations.
    CORE_ZERO_ROUND_REJECTIONS = "core.zero_round.rejections";

    /// Counter: trials an adaptive Monte-Carlo run actually spent
    /// before its confidence sequence stopped it (equals the budget
    /// when the sequence never triggered).
    MC_ADAPTIVE_TRIALS_SPENT = "mc.adaptive.trials_spent";
    /// Counter: the trial budget the adaptive run was allowed
    /// (`trials_spent / budget` is the early-stopping saving).
    MC_ADAPTIVE_BUDGET = "mc.adaptive.budget";
    /// Counter: samples drawn through the batched (lane-oriented)
    /// sampling kernels.
    SAMPLING_BATCH_DRAWS = "sampling.batch.draws";
    /// Counter: LANES-wide blocks processed by the batched kernels
    /// (`draws / blocks` approaches the lane width on large requests).
    SAMPLING_BATCH_BLOCKS = "sampling.batch.blocks";

    // ------------------------------------------------------------- congest

    /// Counter: CONGEST tester runs.
    CONGEST_RUNS = "congest.runs";
    /// Counter: CONGEST rounds consumed (packaging + aggregation phases).
    CONGEST_ROUNDS = "congest.rounds";
    /// Counter: total bits the CONGEST tester put on the wire
    /// (package announcements + convergecast + broadcast; Thm 5.1 budget).
    CONGEST_BITS = "congest.bits";
    /// Counter: sample packages formed across runs.
    CONGEST_PACKAGES = "congest.packages";
    /// Counter: rejecting packages across runs.
    CONGEST_REJECTING_PACKAGES = "congest.rejecting_packages";
    /// Counter: robust (fault-tolerant) CONGEST tester runs.
    CONGEST_ROBUST_RUNS = "congest.robust.runs";
    /// Counter: wire bits corrected by the Justesen message codec across
    /// robust runs (flips below the certified radius, fixed transparently).
    CONGEST_ECC_CORRECTED_BITS = "congest.ecc.corrected_bits";
    /// Counter: codewords the Justesen codec failed to decode (corruption
    /// beyond the certified radius); each is treated as a dropped message
    /// and left to the retry layer.
    CONGEST_ECC_DECODE_FAILURES = "congest.ecc.decode_failures";
    /// Counter: retransmissions performed by the robust tester's ARQ
    /// phases (residue, forwarding, aggregation, broadcast).
    CONGEST_ROBUST_RETRANSMITS = "congest.robust.retransmits";
    /// Counter: unrecovered delivery failures in robust runs (retry budget
    /// or deadline exhausted somewhere in the pipeline).
    CONGEST_ROBUST_FAILURES = "congest.robust.failures";
    /// Counter: conductance tester runs (plain + robust).
    CONGEST_CONDUCTANCE_RUNS = "congest.conductance.runs";
    /// Counter: fault-hardened (coded/ARQ) conductance tester runs.
    CONGEST_CONDUCTANCE_ROBUST_RUNS = "congest.conductance.robust_runs";
    /// Counter: total pipeline rounds consumed by conductance runs
    /// (leader + BFS + censuses + walks + collision/verdict phases).
    CONGEST_CONDUCTANCE_ROUNDS = "congest.conductance.rounds";
    /// Counter: rounds spent in the lazy-random-walk phase alone
    /// (the O(log n / Φ) mixing portion of the round budget).
    CONGEST_CONDUCTANCE_WALK_ROUNDS = "congest.conductance.walk_rounds";
    /// Counter: total payload bits conductance runs put on the wire.
    CONGEST_CONDUCTANCE_BITS = "congest.conductance.bits";
    /// Counter: walk tokens surviving to the endpoint census (equals
    /// `k·ℓ` on every successful run — conservation is enforced).
    CONGEST_CONDUCTANCE_TOKENS = "congest.conductance.tokens";
    /// Counter: endpoint collision statistic `S` summed over runs
    /// (same-source resting pairs; the quantity the verdict thresholds).
    CONGEST_CONDUCTANCE_COLLISIONS = "congest.conductance.collisions";
    /// Counter: accepting conductance runs (verdict = expander).
    CONGEST_CONDUCTANCE_ACCEPTS = "congest.conductance.accepts";

    // --------------------------------------------------------------- local

    /// Counter: LOCAL tester runs.
    LOCAL_RUNS = "local.runs";
    /// Counter: LOCAL rounds consumed (Lemma 7.3: O(log* n) radius).
    LOCAL_ROUNDS = "local.rounds";
    /// Counter: nodes selected into the maximal independent set.
    LOCAL_MIS_SIZE = "local.mis_size";
    /// Counter: minimum samples gathered by any MIS center, summed
    /// over runs (each center must clear the Thm 1.1 sample bound).
    LOCAL_MIN_GATHERED = "local.min_gathered";

    // ----------------------------------------------------------------- smp

    /// Counter: SMP protocol executions.
    SMP_RUNS = "smp.runs";
    /// Counter: referee input bits across executions (sum of both
    /// players' message lengths; the Thm 1.4 / simultaneous-messages cost).
    SMP_MESSAGE_BITS = "smp.message_bits";
    /// Counter: accepting executions.
    SMP_ACCEPTS = "smp.accepts";

    // --------------------------------------------------------------- chaos

    /// Counter: protocol executions spent by a fault-boundary search
    /// (rate probes + witness attempts + shrink candidates).
    CHAOS_BOUNDARY_PROBES = "chaos.boundary.probes";
    /// Counter: probe executions that failed (typed error or panic)
    /// across a boundary search.
    CHAOS_BOUNDARY_FAILURES = "chaos.boundary.failures";
    /// Counter: the located drop-rate frontier in parts per million
    /// (`rate * 1e6`, rounded down). Recorded only when the search
    /// bracketed a drop frontier.
    CHAOS_BOUNDARY_DROP_PPM = "chaos.boundary.drop_ppm";
    /// Counter: the located flip-rate frontier in parts per million.
    /// Recorded only when the search bracketed a flip frontier.
    CHAOS_BOUNDARY_FLIP_PPM = "chaos.boundary.flip_ppm";
    /// Counter: fault events (crashes + rejoins) in the minimal witness
    /// plan after delta-debugging. Recorded only when a witness exists.
    CHAOS_BOUNDARY_WITNESS_EVENTS = "chaos.boundary.witness_events";
    /// Counter: candidate executions spent shrinking the witness to
    /// 1-minimality.
    CHAOS_BOUNDARY_SHRINK_STEPS = "chaos.boundary.shrink_steps";

    // ---------------------------------------------------------------- soak

    /// Counter: soak-harness ticks completed (one tick = one traffic
    /// burst into the streaming service plus one robust CONGEST run
    /// under the tick's fault plan).
    SOAK_TICKS = "soak.ticks";
    /// Counter: stream samples that survived the ingest fault coin and
    /// reached the service, across all ticks.
    SOAK_SAMPLES = "soak.samples";
    /// Counter: stream samples lost to the sustained ingest drop rate
    /// before reaching the service.
    SOAK_DROPPED_SAMPLES = "soak.dropped_samples";
    /// Counter: silent verdict flips — a resolved coordinator verdict
    /// (Uniform/Far) that changed to the *other* resolved verdict on a
    /// later tick. The E15 soak verdict requires this to stay 0;
    /// Pending→resolved transitions are not flips.
    SOAK_VERDICT_FLIPS = "soak.verdict_flips";
    /// Counter: robust CONGEST pipeline runs driven by the soak loop.
    SOAK_PIPELINE_RUNS = "soak.pipeline.runs";
    /// Counter: soak pipeline runs that ended `FaultOverwhelmed`
    /// (scheduled crash/rejoin cycles must be absorbed, so this stays 0
    /// unless the sustained drop rate overwhelms a run).
    SOAK_PIPELINE_FAILURES = "soak.pipeline.failures";
    /// Counter: ARQ retransmissions spent by soak pipeline runs,
    /// cumulative across ticks (the bounded-growth check divides this
    /// by `soak.ticks`).
    SOAK_RETRANSMITS = "soak.retransmits";
    /// Histogram: recovery time per scheduled rejoin that was absorbed —
    /// the crashed node's downtime in simulated rounds.
    SOAK_RECOVERY_ROUNDS = "soak.recovery_rounds";

    // -------------------------------------------------------------- stream

    /// Counter: samples ingested by a streaming service across all
    /// labeled streams.
    STREAM_PUSHES = "stream.pushes";
    /// Counter: distinct labeled streams the service has seen.
    STREAM_STREAMS = "stream.streams";
    /// Counter: samples evicted by per-stream sliding windows (each
    /// eviction retires the window's oldest sample from its sketch).
    STREAM_WINDOW_EVICTIONS = "stream.window.evictions";
    /// Counter: shard-local sketch merges performed by the coordinator
    /// (one per non-empty stream folded into a global verdict).
    STREAM_COORDINATOR_MERGES = "stream.coordinator.merges";
    /// Counter: coordinator verdict looks taken so far — the index into
    /// the union-bound Wilson schedule (`sequence_z`) that prices
    /// repeated peeking into the anytime confidence level.
    STREAM_COORDINATOR_LOOKS = "stream.coordinator.looks";
    /// Counter: per-stream votes that currently reject, summed over
    /// coordinator verdicts (the threshold rule compares these to T).
    STREAM_COORDINATOR_REJECTING_VOTES = "stream.coordinator.rejecting_votes";
}

/// Maps a runtime string to the registered `&'static str` key it names,
/// or `None` if no such key exists.
///
/// Sinks ([`crate::MemorySink`]) key their maps by `&'static str` so
/// recording never allocates; anything that *deserializes* metrics
/// (checkpoint resume, JSONL readers) goes through this to get back
/// into the registry.
pub fn lookup(name: &str) -> Option<&'static str> {
    ALL.iter().find(|k| **k == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_constants() {
        for key in [NETSIM_BITS, CORE_GAP_RUNS, CONGEST_ROUNDS, SMP_ACCEPTS] {
            assert!(ALL.contains(&key));
        }
        assert!(ALL.len() >= 40);
    }

    #[test]
    fn registry_has_no_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for key in ALL {
            assert!(seen.insert(*key), "duplicate key {key}");
        }
    }

    #[test]
    fn lookup_round_trips_and_rejects_unknowns() {
        let name = String::from("core.gap.runs");
        assert_eq!(lookup(&name), Some(CORE_GAP_RUNS));
        assert_eq!(lookup("no.such.key"), None);
    }
}
