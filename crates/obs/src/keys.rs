//! The metric key registry.
//!
//! Every instrumented call site uses one of these constants, so the
//! set of keys a binary can emit is closed and greppable, and
//! `docs/METRICS.md` can document each one's unit and the theorem it
//! checks against. Naming convention: `<layer>.<subject>.<measure>`,
//! with `<layer>.round.*` for per-round histogram observations and
//! plain `<layer>.*` for run-total counters.

// ---------------------------------------------------------------- netsim

/// Counter: engine runs completed (one per `run_observed` call).
pub const NETSIM_RUNS: &str = "netsim.runs";
/// Counter: synchronous rounds executed, summed over runs.
pub const NETSIM_ROUNDS: &str = "netsim.rounds";
/// Counter: messages delivered, summed over runs.
pub const NETSIM_MESSAGES: &str = "netsim.messages";
/// Counter: message payload bits metered by the bandwidth model.
pub const NETSIM_BITS: &str = "netsim.bits";
/// Histogram: messages delivered in one round.
pub const NETSIM_ROUND_MESSAGES: &str = "netsim.round.messages";
/// Histogram: payload bits delivered in one round.
pub const NETSIM_ROUND_BITS: &str = "netsim.round.bits";
/// Histogram: max bits crossing any single directed edge in one round
/// (per-round slot congestion; the CONGEST model caps this).
pub const NETSIM_ROUND_MAX_EDGE_BITS: &str = "netsim.round.max_edge_bits";
/// Histogram: wall-clock nanoseconds spent executing one round
/// (node stepping + metering + delivery).
pub const NETSIM_ROUND_NANOS: &str = "netsim.round.nanos";
/// Histogram: per-run max bits on any directed edge in any round.
pub const NETSIM_RUN_MAX_EDGE_BITS: &str = "netsim.run.max_edge_bits";

// ---------------------------------------------------- netsim fault layer

/// Counter: messages dropped in transit by fault injection (the sender
/// was still metered for them). Recorded only on faulted runs.
pub const NETSIM_FAULT_DROPPED_MESSAGES: &str = "netsim.fault.dropped_messages";
/// Counter: wire bits flipped in transit by fault injection. Recorded
/// only on faulted runs.
pub const NETSIM_FAULT_FLIPPED_BITS: &str = "netsim.fault.flipped_bits";
/// Counter: scheduled node crashes that took effect within the run.
pub const NETSIM_FAULT_CRASHED_NODES: &str = "netsim.fault.crashed_nodes";
/// Counter: retransmissions performed by the reliable (ack/retry) tree
/// primitives, beyond each message's first transmission.
pub const NETSIM_RELIABLE_RETRANSMITS: &str = "netsim.reliable.retransmits";
/// Counter: delivery failures in the reliable tree primitives — a
/// sender exhausted its retry budget, or a receiver hit its deadline
/// with children still unreported.
pub const NETSIM_RELIABLE_FAILURES: &str = "netsim.reliable.failures";

// ------------------------------------------------------- netsim reference

/// Counter: reference-engine runs completed.
pub const REFERENCE_RUNS: &str = "reference.runs";
/// Counter: rounds executed by the reference engine.
pub const REFERENCE_ROUNDS: &str = "reference.rounds";
/// Counter: messages delivered by the reference engine.
pub const REFERENCE_MESSAGES: &str = "reference.messages";
/// Counter: bits metered by the reference engine.
pub const REFERENCE_BITS: &str = "reference.bits";
/// Histogram: messages per round in the reference engine.
pub const REFERENCE_ROUND_MESSAGES: &str = "reference.round.messages";
/// Histogram: bits per round in the reference engine.
pub const REFERENCE_ROUND_BITS: &str = "reference.round.bits";
/// Histogram: per-round max single-edge bits in the reference engine.
pub const REFERENCE_ROUND_MAX_EDGE_BITS: &str = "reference.round.max_edge_bits";
/// Histogram: wall-clock nanoseconds per reference-engine round.
pub const REFERENCE_ROUND_NANOS: &str = "reference.round.nanos";
/// Counter: messages dropped by fault injection in the reference
/// engine (differential mirror of `netsim.fault.dropped_messages`).
pub const REFERENCE_FAULT_DROPPED_MESSAGES: &str = "reference.fault.dropped_messages";
/// Counter: wire bits flipped by fault injection in the reference
/// engine (differential mirror of `netsim.fault.flipped_bits`).
pub const REFERENCE_FAULT_FLIPPED_BITS: &str = "reference.fault.flipped_bits";

// ------------------------------------------------- netsim tree primitives

/// Counter: convergecast invocations.
pub const CONVERGECAST_RUNS: &str = "netsim.convergecast.runs";
/// Counter: rounds spent inside convergecast.
pub const CONVERGECAST_ROUNDS: &str = "netsim.convergecast.rounds";
/// Counter: payload bits carried by convergecast messages.
pub const CONVERGECAST_BITS: &str = "netsim.convergecast.bits";
/// Counter: broadcast invocations.
pub const BROADCAST_RUNS: &str = "netsim.broadcast.runs";
/// Counter: rounds spent inside broadcast.
pub const BROADCAST_ROUNDS: &str = "netsim.broadcast.rounds";
/// Counter: payload bits carried by broadcast messages.
pub const BROADCAST_BITS: &str = "netsim.broadcast.bits";

// ------------------------------------------------------------------ core

/// Counter: gap-tester runs (one per tested sample multiset).
pub const CORE_GAP_RUNS: &str = "core.gap.runs";
/// Counter: samples consumed by the gap tester (Thm 1.1: s per run).
pub const CORE_GAP_SAMPLES: &str = "core.gap.samples";
/// Counter: gap-tester runs that found a collision (the tester's
/// single reject bit; it does not count individual colliding pairs).
pub const CORE_GAP_COLLISIONS: &str = "core.gap.collisions";
/// Counter: amplified-tester runs.
pub const CORE_AMPLIFY_RUNS: &str = "core.amplify.runs";
/// Counter: independent repetitions executed across amplified runs.
pub const CORE_AMPLIFY_REPETITIONS: &str = "core.amplify.repetitions";
/// Counter: rejecting repetitions across amplified runs.
pub const CORE_AMPLIFY_REJECTIONS: &str = "core.amplify.rejections";
/// Counter: zero-round network simulations.
pub const CORE_ZERO_ROUND_RUNS: &str = "core.zero_round.runs";
/// Counter: per-node votes cast inside zero-round simulations
/// (equals nodes x runs; the protocol sends no messages, Thm 1.2).
pub const CORE_ZERO_ROUND_VOTES: &str = "core.zero_round.votes";
/// Counter: rejecting votes inside zero-round simulations.
pub const CORE_ZERO_ROUND_REJECTIONS: &str = "core.zero_round.rejections";

// --------------------------------------------------------------- congest

/// Counter: CONGEST tester runs.
pub const CONGEST_RUNS: &str = "congest.runs";
/// Counter: CONGEST rounds consumed (packaging + aggregation phases).
pub const CONGEST_ROUNDS: &str = "congest.rounds";
/// Counter: total bits the CONGEST tester put on the wire
/// (package announcements + convergecast + broadcast; Thm 5.1 budget).
pub const CONGEST_BITS: &str = "congest.bits";
/// Counter: sample packages formed across runs.
pub const CONGEST_PACKAGES: &str = "congest.packages";
/// Counter: rejecting packages across runs.
pub const CONGEST_REJECTING_PACKAGES: &str = "congest.rejecting_packages";
/// Counter: robust (fault-tolerant) CONGEST tester runs.
pub const CONGEST_ROBUST_RUNS: &str = "congest.robust.runs";
/// Counter: wire bits corrected by the Justesen message codec across
/// robust runs (flips below the certified radius, fixed transparently).
pub const CONGEST_ECC_CORRECTED_BITS: &str = "congest.ecc.corrected_bits";
/// Counter: codewords the Justesen codec failed to decode (corruption
/// beyond the certified radius); each is treated as a dropped message
/// and left to the retry layer.
pub const CONGEST_ECC_DECODE_FAILURES: &str = "congest.ecc.decode_failures";
/// Counter: retransmissions performed by the robust tester's ARQ
/// phases (residue, forwarding, aggregation, broadcast).
pub const CONGEST_ROBUST_RETRANSMITS: &str = "congest.robust.retransmits";
/// Counter: unrecovered delivery failures in robust runs (retry budget
/// or deadline exhausted somewhere in the pipeline).
pub const CONGEST_ROBUST_FAILURES: &str = "congest.robust.failures";

// ----------------------------------------------------------------- local

/// Counter: LOCAL tester runs.
pub const LOCAL_RUNS: &str = "local.runs";
/// Counter: LOCAL rounds consumed (Lemma 7.3: O(log* n) radius).
pub const LOCAL_ROUNDS: &str = "local.rounds";
/// Counter: nodes selected into the maximal independent set.
pub const LOCAL_MIS_SIZE: &str = "local.mis_size";
/// Counter: minimum samples gathered by any MIS center, summed
/// over runs (each center must clear the Thm 1.1 sample bound).
pub const LOCAL_MIN_GATHERED: &str = "local.min_gathered";

// ------------------------------------------------------------------- smp

/// Counter: SMP protocol executions.
pub const SMP_RUNS: &str = "smp.runs";
/// Counter: referee input bits across executions (sum of both
/// players' message lengths; the Thm 1.4 / simultaneous-messages cost).
pub const SMP_MESSAGE_BITS: &str = "smp.message_bits";
/// Counter: accepting executions.
pub const SMP_ACCEPTS: &str = "smp.accepts";
