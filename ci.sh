#!/usr/bin/env bash
# Tier-1 gate: every change must pass this sequence (see README §CI).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "ci.sh: all green"
