#!/usr/bin/env bash
# Tier-1 gate: every change must pass `./ci.sh` (all lanes, in order).
#
# Lanes are individually addressable so the GitHub Actions matrix
# (.github/workflows/ci.yml) can run them as parallel jobs:
#
#   ./ci.sh                 # every lane, the local pre-push gate
#   ./ci.sh lint test       # just those lanes, in the order given
#   ./ci.sh --list          # lane names, one per line
#
# Lane -> invariant map lives in docs/ARCHITECTURE.md §CI.
set -euo pipefail
cd "$(dirname "$0")"

# Minimum supported Rust version; must match workspace.package.rust-version
# in Cargo.toml (the msrv lane greps it out so they can't drift).
MSRV="$(sed -n 's/^rust-version = "\(.*\)"$/\1/p' Cargo.toml)"

lane_lint() {
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
    echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
    echo "==> cargo doc --workspace --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps
}

lane_test() {
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

lane_fault_differential() {
    echo "==> fault differential suite (serial == parallel == reference, faulted)"
    cargo test --release -p dut-netsim --test differential -q
}

lane_testkit() {
    echo "==> testkit lane (exact oracles, strategies, regression suite)"
    cargo test --release -p dut-testkit -q
    echo "==> parallel differential suite (serial == 2 == 8 threads, bit-identical)"
    cargo test --release -p dut-core --test parallel_differential -q
    cargo test --release -p dut-congest --test parallel_differential -q
    echo "==> fixed-seed codec-corruption smoke (RS + Justesen, seeded)"
    cargo test --release -p dut-testkit --test fuzz_drivers -q
}

lane_feature_matrix() {
    echo "==> feature-matrix lane (fast-sampling on/off, no-default-features)"
    # fast-sampling swaps the Monte-Carlo trial generator to BatchRng:
    # a different (still deterministic) sample stream. The differential
    # suites must hold on it, not just on the default stream.
    cargo test --release --workspace --features dut-core/fast-sampling -q \
        --target-dir target/feature-matrix
    # No defaults: every crate must build and test without any optional
    # feature, so nothing load-bearing hides behind one.
    cargo test --release --workspace --no-default-features -q \
        --target-dir target/feature-matrix
}

lane_overflow() {
    echo "==> overflow-checks lane (arithmetic panics surface in release codecs)"
    RUSTFLAGS="-C overflow-checks=on" \
        cargo test --release -p dut-ecc -p dut-distributions -q \
        --target-dir target/overflow-checks
}

lane_experiments_smoke() {
    echo "==> experiments smoke (E1-E16 quick scale, verdicts vs EXPERIMENTS.md)"
    cargo run --release -p dut-bench --bin experiments -- --quick --check all > /dev/null
}

lane_conductance() {
    echo "==> conductance lane (walk + pipeline differential: serial == sharded == reference)"
    cargo test --release -p dut-congest --test conductance_differential -q
    echo "==> conductance lane (walk proptests: engine invariance, clique stationarity)"
    cargo test --release -p dut-congest --test walk_differential -q
    echo "==> conductance lane (exact small-graph oracle cross-check)"
    cargo test --release -p dut-testkit conductance -q
    echo "==> conductance lane (E16 quick smoke, verdict vs EXPERIMENTS.md)"
    cargo run --release -p dut-bench --bin experiments -- --quick --check e16 > /dev/null
}

lane_stream() {
    echo "==> stream lane (merge-differential suite: sketches == batch testers)"
    cargo test --release -p dut-stream -q
    echo "==> stream lane (dgk feature: sublinear-memory sketch + merge law)"
    cargo test --release -p dut-stream --features dgk -q
    echo "==> stream lane (E14 quick smoke, verdict vs EXPERIMENTS.md)"
    cargo run --release -p dut-bench --bin experiments -- --quick --check e14 > /dev/null
}

lane_netsim_scale() {
    echo "==> netsim-scale lane (10^6-node implicit-torus smoke, sharded bit-identity)"
    cargo test --release -p dut-netsim --test scale -q -- --ignored
    echo "==> netsim-scale lane (implicit-vs-materialized + sharded/sparse differential)"
    cargo test --release -p dut-netsim --test implicit -q
}

lane_chaos() {
    echo "==> chaos lane (boundary-search regression: pinned minimal witness, thread-invariant)"
    # The pinned-witness test fails if the fixed-seed fault-boundary
    # search stops reproducing its recorded minimal fault plan and
    # drop/flip frontiers bit-identically.
    cargo test --release -p dut-testkit chaos -q
    echo "==> chaos lane (E15 soak verdict, quick scale)"
    cargo run --release -p dut-bench --bin experiments -- --quick --check e15 > /dev/null
    echo "==> chaos lane (30-second seeded wall-clock soak smoke)"
    # The zero-silent-flips invariant holds at ANY horizon (unlike 100%
    # pipeline survival, which only the pinned fixed-budget ticks
    # guarantee), so the smoke audits it from the per-tick JSONL trail.
    local soak_jsonl
    soak_jsonl="$(mktemp)"
    cargo run --release -p dut-bench --bin experiments -- \
        --quick --soak 30 --metrics "${soak_jsonl}" > /dev/null
    if grep -q '"soak.verdict_flips":[1-9]' "${soak_jsonl}"; then
        echo "chaos lane: silent verdict flip during wall-clock soak" >&2
        rm -f "${soak_jsonl}"
        exit 1
    fi
    rm -f "${soak_jsonl}"
}

lane_perf_gate() {
    echo "==> perf-regression gate (BENCH_netsim.json + BENCH_montecarlo.json + BENCH_sampling.json)"
    cargo run --release -p dut-bench --bin ci-bench-check
}

lane_msrv() {
    echo "==> msrv lane (workspace builds on Rust ${MSRV})"
    if command -v rustup > /dev/null && rustup toolchain list | grep -q "^${MSRV}"; then
        cargo "+${MSRV}" build --workspace --locked
    elif [ "${CI:-}" = "true" ]; then
        # CI must install the toolchain (the workflow's msrv job does);
        # a silent skip there would let an MSRV break land.
        echo "msrv lane requires the ${MSRV} toolchain in CI" >&2
        exit 1
    else
        echo "    (skipped: rustup toolchain ${MSRV} not installed;"
        echo "     install with: rustup toolchain install ${MSRV})"
    fi
}

LANES=(lint test fault-differential testkit feature-matrix overflow experiments-smoke conductance stream netsim-scale chaos perf-gate msrv)

if [ "${1:-}" = "--list" ]; then
    printf '%s\n' "${LANES[@]}"
    exit 0
fi

run_lane() {
    case "$1" in
        lint) lane_lint ;;
        test) lane_test ;;
        fault-differential) lane_fault_differential ;;
        testkit) lane_testkit ;;
        feature-matrix) lane_feature_matrix ;;
        overflow) lane_overflow ;;
        experiments-smoke) lane_experiments_smoke ;;
        conductance) lane_conductance ;;
        stream) lane_stream ;;
        netsim-scale) lane_netsim_scale ;;
        chaos) lane_chaos ;;
        perf-gate) lane_perf_gate ;;
        msrv) lane_msrv ;;
        *)
            echo "unknown lane: $1 (try: ./ci.sh --list)" >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    for lane in "${LANES[@]}"; do
        run_lane "$lane"
    done
else
    for lane in "$@"; do
        run_lane "$lane"
    done
fi

echo "ci.sh: all green"
