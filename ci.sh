#!/usr/bin/env bash
# Tier-1 gate: every change must pass this sequence (see README §CI).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (warnings are errors)"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> fault differential suite (serial == parallel == reference, faulted)"
cargo test --release -p dut-netsim --test differential -q

echo "==> testkit lane (exact oracles, strategies, regression suite)"
cargo test --release -p dut-testkit -q

echo "==> overflow-checks lane (arithmetic panics surface in release codecs)"
RUSTFLAGS="-C overflow-checks=on" \
    cargo test --release -p dut-ecc -p dut-distributions -q \
    --target-dir target/overflow-checks

echo "==> fixed-seed codec-corruption smoke (RS + Justesen, seeded)"
cargo test --release -p dut-testkit --test fuzz_drivers -q

echo "==> fixed-seed fault-sweep smoke (E13, quick scale)"
cargo run --release -p dut-bench --bin experiments -- --quick e13 > /dev/null

echo "ci.sh: all green"
