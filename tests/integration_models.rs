//! Cross-crate integration: the same testing problem solved in every
//! model the paper considers, on the same instances.

use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_local::LocalUniformityTester;
use dut_netsim::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The same (n, ε) instance must be solvable 0-round, in CONGEST, and
/// in LOCAL — each with its own resource profile.
#[test]
fn all_three_models_agree_on_verdicts() {
    let eps = 1.0;
    let p = 1.0 / 3.0;
    let mut rng = StdRng::seed_from_u64(42);

    // 0-round: n = 2^12, k = 12000 nodes with private samples.
    let n = 1 << 12;
    let k = 12_000;
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).unwrap();

    // Per-run errors are only guaranteed ≤ 1/3, so decide by majority
    // of 5 independent runs.
    let majority = |mut f: Box<dyn FnMut() -> Decision>| -> Decision {
        let rejects = (0..5).filter(|_| f() == Decision::Reject).count();
        Decision::from_accept(rejects < 3)
    };

    let zero_round = ThresholdNetworkTester::plan(n, k, eps, p).unwrap();
    let zr_u = {
        let (t, u, mut r) = (zero_round.clone(), uniform.clone(), rng.clone());
        majority(Box::new(move || t.run(&u, &mut r).decision))
    };
    let zr_f = {
        let (t, d, mut r) = (zero_round.clone(), far.clone(), rng.clone());
        majority(Box::new(move || t.run(&d, &mut r).decision))
    };

    // CONGEST on a tree of the same size.
    let congest = CongestUniformityTester::plan(n, k, eps, p, 1).unwrap();
    let g = topology::balanced_binary_tree(k);
    let cg_u = {
        let (t, u, gg, mut r) = (congest.clone(), uniform.clone(), g.clone(), rng.clone());
        majority(Box::new(move || t.run(&gg, &u, &mut r).unwrap().decision))
    };
    let cg_f = {
        let (t, d, gg, mut r) = (congest.clone(), far.clone(), g.clone(), rng.clone());
        majority(Box::new(move || t.run(&gg, &d, &mut r).unwrap().decision))
    };

    // LOCAL on a grid (smaller k is fine — LOCAL gathers aggressively).
    let local_k = 4096;
    let local_n = 1 << 16;
    let local_uniform = DiscreteDistribution::uniform(local_n);
    let local_far = paninski_far(local_n, 0.75).unwrap();
    let local = LocalUniformityTester::plan(local_n, local_k, 0.75, p).unwrap();
    let lg = topology::grid(64, 64);
    // The LOCAL tester uses the AND rule, whose provable soundness at
    // this scale is the weak "1/2 + Θ(ε²)" signal — compare rejection
    // counts rather than asserting a single verdict.
    let lc_u_rejects = (0..5)
        .filter(|_| local.run(&lg, &local_uniform, &mut rng).outcome.decision == Decision::Reject)
        .count();
    let lc_f_rejects = (0..5)
        .filter(|_| local.run(&lg, &local_far, &mut rng).outcome.decision == Decision::Reject)
        .count();

    assert_eq!(zr_u, Decision::Accept, "0-round false alarm");
    assert_eq!(zr_f, Decision::Reject, "0-round missed detection");
    assert_eq!(cg_u, Decision::Accept, "CONGEST false alarm");
    assert_eq!(cg_f, Decision::Reject, "CONGEST missed detection");
    assert!(lc_u_rejects <= 2, "LOCAL false alarms: {lc_u_rejects}/5");
    assert!(
        lc_f_rejects >= lc_u_rejects,
        "LOCAL shows no separation: far {lc_f_rejects} vs uniform {lc_u_rejects}"
    );
}

/// Sample-per-node requirements must be ordered as the theory predicts:
/// threshold 0-round ≤ CONGEST package size ≤ centralized.
#[test]
fn resource_profiles_are_ordered() {
    let n = 1 << 12;
    let k = 12_000;
    let eps = 1.0;
    let p = 1.0 / 3.0;

    let zero_round = ThresholdNetworkTester::plan(n, k, eps, p).unwrap();
    let congest = CongestUniformityTester::plan(n, k, eps, p, 1).unwrap();
    let centralized = (n as f64).sqrt() / (eps * eps);

    // 0-round: few samples per node (all k nodes sample).
    assert!(zero_round.samples_per_node() <= congest.tau());
    // CONGEST virtual nodes hold tau samples each, still below the
    // single-node centralized requirement.
    assert!((congest.tau() as f64) < centralized);
}

/// Round complexity: CONGEST on a star (D = 2) must use far fewer
/// rounds than on a line (D = k − 1) at the same parameters.
#[test]
fn congest_rounds_dominated_by_diameter() {
    let n = 1 << 12;
    let k = 2_000;
    // k = 2000 holds enough samples at eps = 1 for a coarse test; if
    // planning fails at this k the test is vacuous, so use a size that
    // plans.
    let k = if CongestUniformityTester::plan(n, k, 1.0, 1.0 / 3.0, 1).is_ok() {
        k
    } else {
        12_000
    };
    let tester = CongestUniformityTester::plan(n, k, 1.0, 1.0 / 3.0, 1).unwrap();
    let uniform = DiscreteDistribution::uniform(n);
    let mut rng = StdRng::seed_from_u64(7);

    let star = topology::star(k);
    let line = topology::line(k);
    let star_rounds = tester.run(&star, &uniform, &mut rng).unwrap().rounds;
    let line_rounds = tester.run(&line, &uniform, &mut rng).unwrap().rounds;
    assert!(
        line_rounds > star_rounds + k / 2,
        "line ({line_rounds}) should dwarf star ({star_rounds})"
    );
}

/// The identity filter composes with every tester: filtered η looks
/// uniform to the CONGEST tester too.
#[test]
fn identity_filter_composes_with_congest() {
    use dut_core::identity::{FilteredOracle, IdentityFilter};

    let n = 1 << 8;
    let eta =
        DiscreteDistribution::from_weights((1..=n).map(|i| 1.0 / i as f64).collect()).unwrap();
    let filter = IdentityFilter::new(&eta, 16).unwrap();
    let g_domain = filter.output_domain_size();

    let k = 12_000;
    let tester = CongestUniformityTester::plan(g_domain, k, 1.0, 1.0 / 3.0, 1).unwrap();
    let g = topology::star(k);
    let mut rng = StdRng::seed_from_u64(3);
    let oracle = FilteredOracle::new(&filter, &eta);
    let result = tester.run(&g, &oracle, &mut rng).unwrap();
    assert_eq!(result.decision, Decision::Accept);
}
