//! End-to-end pipeline checks that span crates: distributions → core
//! math → SMP/ECC → lower-bound consistency.

use dut_core::params::{plan_threshold, samples_for_delta, theorem_1_2_samples, WindowMethod};
use dut_distributions::collision::collision_probability;
use dut_distributions::families::paninski_far;
use dut_ecc::{BinaryCode, RandomLinearCode};
use dut_lowerbound::{corollary_7_4_bound, theorem_1_3_bound};
use dut_smp::{EqualityProtocol, SmpProtocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper and lower bounds must bracket each other across a parameter
/// sweep: Theorem 1.2's samples ≥ Theorem 1.3's bound; the gap tester's
/// √(2δn) ≥ Corollary 7.4's bound.
#[test]
fn upper_bounds_dominate_lower_bounds() {
    for &(n, k) in &[
        (1usize << 14, 50_000usize),
        (1 << 18, 200_000),
        (1 << 20, 1_000_000),
    ] {
        let upper = theorem_1_2_samples(n, k, 0.5);
        let lower = theorem_1_3_bound(n, k);
        assert!(
            upper >= lower,
            "n={n}, k={k}: upper {upper} below lower {lower}"
        );
    }
    for &delta in &[0.001f64, 0.01, 0.1] {
        let n = 1 << 16;
        let upper = (2.0 * delta * n as f64).sqrt();
        let lower = corollary_7_4_bound(n, delta, 1.25);
        assert!(upper >= lower, "delta={delta}");
    }
}

/// The planned threshold tester's sample count must track the
/// Theorem 1.2 law within a constant factor across a k sweep.
#[test]
fn planner_tracks_theorem_1_2_law() {
    let n = 1 << 18;
    let eps = 0.5;
    let mut ratios = Vec::new();
    for &k in &[60_000usize, 240_000, 960_000] {
        let plan = plan_threshold(n, k, eps, 1.0 / 3.0, WindowMethod::Exact).unwrap();
        ratios.push(plan.samples_per_node as f64 / theorem_1_2_samples(n, k, eps));
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 2.5,
        "constant factor drifts across k: {ratios:?}"
    );
}

/// SMP protocol communication must stay within a constant factor of the
/// √(24τδn) law and above the lower bound, across n.
#[test]
fn smp_cost_bracketed_by_bounds() {
    let tau = 2.0;
    let delta = 0.05;
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        let p = EqualityProtocol::new(n, tau, delta, 1).unwrap();
        let cost = p.message_bits_bound() as f64;
        let law = (24.0 * tau * delta * n as f64).sqrt();
        let lower = dut_lowerbound::theorem_7_2_bound(n, tau, delta);
        assert!(cost <= 3.0 * law + 40.0, "n={n}: cost {cost} vs law {law}");
        assert!(
            cost >= lower,
            "n={n}: cost {cost} below lower bound {lower}"
        );
    }
}

/// The collision probability of the Paninski instance drives the gap
/// tester's sample count: planning against χ = (1+ε²)/n must match the
/// planner's √(2δn).
#[test]
fn collision_probability_feeds_the_planner() {
    let n = 1 << 14;
    let eps = 0.5;
    let far = paninski_far(n, eps).unwrap();
    let chi = collision_probability(&far);
    assert!((chi - (1.0 + eps * eps) / n as f64).abs() < 1e-12);
    // A tester with delta = 0.01 draws s = √(2δn) samples; its expected
    // collision count on the far instance is C(s,2)·χ ≈ δ(1+ε²).
    let s = samples_for_delta(n, 0.01).unwrap();
    let expected_collisions = (s * (s - 1)) as f64 / 2.0 * chi;
    assert!(
        (expected_collisions - 0.01 * (1.0 + eps * eps)).abs() < 0.002,
        "expected collisions {expected_collisions}"
    );
}

/// The code underlying the SMP protocol must be usable for the
/// lower-bound reduction end to end: encode, perturb, measure distance.
#[test]
fn ecc_distance_supports_reduction() {
    let code = RandomLinearCode::rate_one_third(512, 9);
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..50 {
        let x: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
        let mut y = x.clone();
        y[rng.gen_range(0..8usize)] ^= 1u64 << rng.gen_range(0..64u32);
        let cx = code.encode(&x);
        let cy = code.encode(&y);
        let d = dut_ecc::distance::hamming_distance(&cx, &cy, code.output_bits());
        assert!(
            d * 6 >= code.output_bits(),
            "distance {d} below n/6 = {}",
            code.output_bits() / 6
        );
    }
}

/// The full reduction chain: a better gap tester (more samples) makes a
/// better Equality protocol — the acceptance gap between equal and
/// distinct inputs widens with q.
#[test]
fn reduction_gap_grows_with_samples() {
    use dut_lowerbound::EqFromCollisionTester;
    let n_bits = 128;
    let trials = 60_000;
    let rate = |q: usize, equal: bool, seed: u64| -> f64 {
        let p = EqFromCollisionTester::new(n_bits, q, 5);
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = StdRng::seed_from_u64(seed ^ 0xF0F0);
        let x = [0x1234_5678_9ABC_DEF0u64, 0x0FED_CBA9_8765_4321];
        let y = if equal { x } else { [x[0] ^ 1, x[1]] };
        (0..trials)
            .filter(|_| p.run(&x, &y, &mut ra, &mut rb).0)
            .count() as f64
            / trials as f64
    };
    let gap_small = rate(8, true, 1) - rate(8, false, 2);
    let gap_large = rate(32, true, 3) - rate(32, false, 4);
    assert!(
        gap_large > gap_small,
        "gap did not grow: {gap_small} vs {gap_large}"
    );
}
